// Package server is `dbpl serve`: a concurrent TCP front end that exposes
// the paper's operations — the generic Get, PUT/DELETE on named handles,
// the generalized-relation join, and commit groups — to many remote
// programs at once. "Orthogonal Persistence Revisited" (PAPERS.md) argues
// the persistent-store abstraction earns its keep precisely when shared by
// concurrent programs; this package is that sharing.
//
// # Architecture
//
// The server owns one intrinsic store (durability) and publishes, through
// an atomic pointer, an immutable *state*: the committed root bindings
// plus a sharded copy-on-write core.Database holding one dynamic per
// root. Readers (GET, JOIN, NAMES outside a transaction) load the pointer
// and run lock-free against that snapshot — they can never observe a
// commit in progress, because the pointer is swapped only after the
// store's commit group is durable. Writers buffer per session and
// serialize through commitMu: apply the session's operations to the
// store, store.Commit(), then publish the next state (a Fork of the
// previous database with the delta applied). If the store commit fails,
// store.Abort() replays the log back to the last durable group and the
// published state is left untouched — the remote failure taxonomy
// (wire.CodeIO / wire.CodeCorrupt) mirrors the local one.
//
// # Sessions and transactions
//
// Each connection is a session. Outside BEGIN, PUT and DELETE autocommit
// (a one-operation commit group). BEGIN pins the session to the state
// current at that moment and buffers subsequent PUT/DELETE; the session's
// own reads see its buffered writes overlaid on the pinned snapshot
// (read-your-writes at repeatable-read isolation), while every other
// session keeps reading the published committed state. COMMIT turns the
// buffer into one commit group; ABORT discards it. Conflicts are resolved
// last-writer-wins per root name at commit time.
//
// # Shutdown
//
// Shutdown closes the listener, interrupts idle reads, lets every
// in-flight request finish and its response flush, force-closes laggards
// when the context expires, and appends a final (possibly empty) commit
// group so the shutdown itself is a durable boundary — the drain + final
// fsync the ISSUE requires, and the same path cmd/dbpl routes SIGINT and
// SIGTERM through.
package server

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dbpl/internal/core"
	"dbpl/internal/dynamic"
	"dbpl/internal/index"
	"dbpl/internal/persist/codec"
	"dbpl/internal/persist/intrinsic"
	"dbpl/internal/persist/iofault"
	"dbpl/internal/plan"
	"dbpl/internal/relation"
	"dbpl/internal/server/wire"
	"dbpl/internal/telemetry"
	rtrace "dbpl/internal/telemetry/trace"
	"dbpl/internal/types"
	"dbpl/internal/value"
)

// ErrServerClosed is returned by Serve after Shutdown completes the drain.
var ErrServerClosed = errors.New("server: closed")

// Config tunes a Server. The zero value is usable.
type Config struct {
	// MaxFrame bounds request and response payloads; 0 means
	// wire.MaxFrame.
	MaxFrame int
	// ReadTimeout bounds receiving the remainder of a request frame once
	// its header has arrived (an idle connection may block indefinitely);
	// 0 means 30s, negative disables.
	ReadTimeout time.Duration
	// WriteTimeout bounds writing one response frame; 0 means 30s,
	// negative disables.
	WriteTimeout time.Duration
	// MaxInFlight is the admission-control cap: the number of requests
	// allowed to execute concurrently across all connections. A request
	// past the cap is shed immediately with CodeOverloaded and a
	// retry-after hint — it is never queued, so load cannot pile up
	// behind a slow disk. HEALTH is exempt, so a monitor can always ask
	// an overloaded server how overloaded it is. 0 means 1024; negative
	// disables the cap.
	MaxInFlight int
	// RetryAfterHint is the backoff hint attached to CodeOverloaded
	// refusals; 0 means 50ms.
	RetryAfterHint time.Duration
	// IdemCacheSize bounds the LRU of applied write ids that deduplicates
	// retried PUT/DELETE/COMMIT frames carrying idempotency keys; 0 means
	// 4096, negative disables deduplication.
	IdemCacheSize int
	// Registry receives the server's metrics (and is served by STATS and
	// the ops endpoint). Pass the registry the store's instrumented FS
	// writes to and one snapshot covers both layers; nil means a fresh
	// private registry. Telemetry is always on — E15 measures its cost.
	Registry *telemetry.Registry
	// SlowOpThreshold is the duration at or above which a request is
	// stamped into the slow-op ring log; 0 means 10ms, negative records
	// every request (useful for tracing under test).
	SlowOpThreshold time.Duration
	// SlowLogSize bounds the slow-op ring; 0 means 256, negative disables
	// the log entirely.
	SlowLogSize int
	// Logf, when set, receives one line per accepted connection error and
	// per protocol violation. nil discards.
	Logf func(format string, args ...any)
	// Follow, when non-empty, makes this server a read-only replication
	// follower of the primary at that address: it streams the primary's
	// log via REPLICATE, applies each verified commit group to its own log
	// and published state, serves reads, and refuses every write with
	// CodeReadOnly. See docs/REPLICATION.md.
	Follow string
	// AllowPromote enables the PROMOTE opcode on this server: a follower
	// may be promoted to primary (failover), and a primary may bump its
	// epoch. Off by default — promotion rewrites who may ack writes, so
	// every failover-enabled node must opt in explicitly (the serve verb's
	// -allow-promote flag). Fence *notifications* are always accepted:
	// refusing to learn about a higher epoch would defeat fencing.
	AllowPromote bool
	// ReplHeartbeat is the keepalive interval on idle replication streams;
	// a follower declares the link dead after 4 missed heartbeats and
	// redials with jittered backoff. 0 means 1s.
	ReplHeartbeat time.Duration
	// ReplChunk is the soft size target of one REPDATA frame; a single
	// commit group larger than it is still shipped whole. 0 means 256KiB.
	ReplChunk int
	// Durability selects when a write is acknowledged relative to its
	// fsync: DurPerCommit (default, one fsync per commit group), DurGroup
	// (concurrent commits share one fsync, acked after it) or DurAsync
	// (acked before the fsync; the acked-end watermark is published via
	// HEALTH/STATS). See coalesce.go and docs/PERSISTENCE.md.
	Durability Durability
	// GroupMaxDelay is how long the committer lingers for stragglers after
	// the first commit of a batch, under DurGroup/DurAsync. 0 (the
	// default) means no artificial wait: a batch is whatever queued while
	// the previous fsync ran — batches grow exactly as fast as the disk is
	// slow, adding no latency when the server is idle.
	GroupMaxDelay time.Duration
	// GroupMaxBatch caps the commit groups amortized by one fsync, under
	// DurGroup/DurAsync; 0 means 64.
	GroupMaxBatch int
	// TraceSampleRate is the head-sampling probability for span-based
	// request tracing: that share of requests (by uniform trace ID)
	// record a full span tree into the trace ring, fetchable via TRACES
	// / `dbpl trace` / the ops endpoint's /traces. 0 (the default)
	// disables tracing entirely — an unsampled request costs one nil
	// check per span site; >= 1 traces everything. A request slow enough
	// for the slow-op ring has its trace force-retained regardless of
	// ring pressure. See docs/OBSERVABILITY.md.
	TraceSampleRate float64
	// TraceRingSize bounds the ring of completed trace trees; 0 means
	// 256, negative disables tracing even with a sample rate set.
	TraceRingSize int
}

func (c Config) maxFrame() int {
	if c.MaxFrame <= 0 {
		return wire.MaxFrame
	}
	return c.MaxFrame
}

func (c Config) maxInFlight() int64 {
	if c.MaxInFlight == 0 {
		return 1024
	}
	if c.MaxInFlight < 0 {
		return 0 // uncapped
	}
	return int64(c.MaxInFlight)
}

func (c Config) retryAfterHint() time.Duration {
	if c.RetryAfterHint <= 0 {
		return 50 * time.Millisecond
	}
	return c.RetryAfterHint
}

func (c Config) idemCacheSize() int {
	if c.IdemCacheSize == 0 {
		return 4096
	}
	if c.IdemCacheSize < 0 {
		return 0 // disabled
	}
	return c.IdemCacheSize
}

func (c Config) slowOpThreshold() time.Duration {
	if c.SlowOpThreshold == 0 {
		return 10 * time.Millisecond
	}
	if c.SlowOpThreshold < 0 {
		return 0 // record everything
	}
	return c.SlowOpThreshold
}

func (c Config) slowLogSize() int {
	if c.SlowLogSize == 0 {
		return 256
	}
	if c.SlowLogSize < 0 {
		return 0 // disabled
	}
	return c.SlowLogSize
}

func (c Config) replHeartbeat() time.Duration {
	if c.ReplHeartbeat <= 0 {
		return time.Second
	}
	return c.ReplHeartbeat
}

func (c Config) replChunk() int {
	if c.ReplChunk <= 0 {
		return 256 << 10
	}
	return c.ReplChunk
}

func (c Config) groupMaxBatch() int {
	if c.GroupMaxBatch <= 0 {
		return 64
	}
	return c.GroupMaxBatch
}

func (c Config) groupMaxDelay() time.Duration {
	if c.GroupMaxDelay < 0 {
		return 0
	}
	return c.GroupMaxDelay
}

func (c Config) traceRingSize() int {
	if c.TraceRingSize == 0 {
		return 256
	}
	if c.TraceRingSize < 0 {
		return 0 // disabled
	}
	return c.TraceRingSize
}

func timeoutOr(d, def time.Duration) time.Duration {
	if d == 0 {
		return def
	}
	if d < 0 {
		return 0
	}
	return d
}

// state is one immutable committed view: the root bindings, the database
// derived from them, and the maintained extents + field indexes over the
// same membership. Published through Server.state; never mutated after
// publication.
type state struct {
	roots map[string]*dynamic.Dynamic
	db    *core.Database
	idx   *index.Set
}

// apply returns the successor state with ops applied, forking the
// database (O(shards)) and advancing the index set (COW, single
// successor) so the previous state stays valid for readers holding it.
// The returned stats report the index-maintenance work done.
func (st *state) apply(ops []txnOp) (*state, index.ApplyStats) {
	next := &state{
		roots: make(map[string]*dynamic.Dynamic, len(st.roots)+len(ops)),
		db:    st.db.Fork(),
	}
	for k, v := range st.roots {
		next.roots[k] = v
	}
	iops := make([]index.Op, 0, len(ops))
	for _, o := range ops {
		var iop index.Op
		if old, ok := next.roots[o.name]; ok {
			next.db.Remove(old)
			delete(next.roots, o.name)
			iop.Remove = old
		}
		if !o.del {
			next.roots[o.name] = o.dyn
			next.db.Insert(o.dyn)
			iop.Add = o.dyn
		}
		if iop.Remove != nil || iop.Add != nil {
			iops = append(iops, iop)
		}
	}
	var stats index.ApplyStats
	next.idx, stats = st.idx.Apply(iops)
	return next, stats
}

// txnOp is one buffered session write: bind name to dyn, or delete it.
type txnOp struct {
	name string
	dyn  *dynamic.Dynamic
	del  bool
}

// Server serves the dbpl wire protocol over an intrinsic store.
type Server struct {
	cfg   Config
	store *intrinsic.Store

	// state is the published committed view; see the package comment.
	state atomic.Pointer[state]
	// commitMu serializes writers end to end: store mutation, commit
	// group, state publication.
	commitMu sync.Mutex
	// poisoned (guarded by commitMu) is set when a failed commit could not
	// be rolled back: the store's in-memory state has diverged from the
	// published committed state, and any further commit group would durably
	// encode that divergence. Every subsequent write is refused with it.
	poisoned error
	// degraded mirrors poisoned != nil for readers that must not touch
	// commitMu: the HEALTH handler has to report a poisoned write path
	// even while a wedged commit is holding the lock.
	degraded atomic.Bool
	// idem (guarded by commitMu) deduplicates retried writes; see idem.go.
	idem *idemCache

	// m is the always-on metric set; m.inflight is the admission-control
	// gauge (requests admitted, response not yet produced). slow is the
	// bounded slow-op ring, nil when disabled.
	m     *serverMetrics
	slow  *telemetry.SlowLog
	start time.Time

	// traces is the ring of completed span trees and sampler its head-
	// sampling decision; traces == nil means tracing is off and every
	// request carries a nil *rtrace.Trace (each span site then costs one
	// nil check — the E20 overhead budget).
	traces  *rtrace.Ring
	sampler rtrace.Sampler
	// lastCommit is the most recent durable commit's mark — log end,
	// originating trace, publication wall-clock — read by replication
	// streamers to attach trace context to the REPDATA frame that ships
	// that commit. Stored under commitMu; loaded lock-free.
	lastCommit atomic.Pointer[commitMark]

	// planModel is the feedback-fed cost model choosing the GET access
	// path; every executed GET observes its latency back into it.
	planModel *plan.Model

	draining atomic.Bool
	mu       sync.Mutex // guards ln, conns
	ln       net.Listener
	conns    map[net.Conn]struct{}
	wg       sync.WaitGroup

	// commitSignal wakes idle replication streamers: every state
	// publication swaps in a fresh channel and closes the old one, so a
	// streamer that loaded the channel *before* reading the durable end
	// can never miss a commit (see notifyCommit).
	commitSignal atomic.Pointer[chan struct{}]
	// shutdownCh is closed when Shutdown begins, waking replication
	// streamers and the follow loop, which never sit in deadline-
	// interruptible request reads.
	shutdownCh   chan struct{}
	shutdownOnce sync.Once
	// follower is the follow-loop state, nil unless cfg.Follow is set.
	follower *followerState

	// role is the server's replication role (a wire.Role): RolePrimary
	// acks writes, RoleFollower refuses them naming the upstream,
	// RoleFenced is a demoted primary that observed a higher promotion
	// epoch and refuses them naming its successor. It starts from
	// cfg.Follow and changes only under commitMu — PROMOTE makes this
	// server the primary, a fence demotes it — so no write decision can
	// race a role change (the double-ack discipline).
	role atomic.Int32
	// fencedBy is the address of the higher-epoch primary that fenced
	// this server, for CodeFenced messages; nil when unknown (the fence
	// was inferred from a replication stream, not a notification).
	fencedBy atomic.Pointer[string]

	// commitCh feeds the committer goroutine under DurGroup/DurAsync; nil
	// under DurPerCommit (commits take the serial path). committerDone
	// closes when the committer has drained the queue and exited;
	// committerStop guards the close of commitCh (Shutdown may be called
	// twice). See coalesce.go.
	commitCh      chan *commitReq
	committerDone chan struct{}
	committerStop sync.Once
	// ackedEnd is the acknowledged-end watermark under DurAsync: the log
	// offset up to which writes have been acked, at or ahead of the
	// durable end by at most one in-flight batch. Zero (and ignored) in
	// the synchronous modes, where nothing is acked before it is durable.
	ackedEnd atomic.Int64
}

// commitMark records the most recent durable, published commit for the
// replication plane: the log end it produced, the trace that committed
// it (0 when the commit was unsampled), and the wall clock at
// publication. A replication streamer whose next chunk ends exactly at
// mark.end attaches the trace and timestamp to that REPDATA frame, so
// the follower can link its apply span to the primary's commit span and
// measure commit-to-visible delay.
type commitMark struct {
	end   int64
	trace uint64
	ns    int64
}

// markCommit publishes the just-committed durable end with its trace
// context. Called with commitMu held (or from the committer goroutine,
// which owns the same serialization).
func (s *Server) markCommit(trace uint64) {
	s.lastCommit.Store(&commitMark{end: s.store.DurableEnd(), trace: trace, ns: time.Now().UnixNano()})
}

// stateFromStore derives a published state from the store's committed
// roots. The index set rebuilds from those roots on every open (only the
// *definitions* are durable), so it can never be ahead of the durable
// state — the crash-matrix invariant.
func stateFromStore(store *intrinsic.Store) (*state, error) {
	st := &state{roots: map[string]*dynamic.Dynamic{}, db: core.New(core.StrategyIndexed)}
	var members []*dynamic.Dynamic
	for _, name := range store.Names() {
		r, ok := store.Root(name)
		if !ok {
			continue
		}
		d, err := dynamic.MakeAt(r.Value, r.Declared)
		if err != nil {
			return nil, fmt.Errorf("server: root %q does not conform to its declared type: %w", name, err)
		}
		st.roots[name] = d
		st.db.Insert(d)
		members = append(members, d)
	}
	defs := make([]index.Def, 0, 4)
	for _, f := range store.IndexDefs() {
		defs = append(defs, index.Def{Field: f})
	}
	st.idx = index.Rebuild(members, defs...)
	return st, nil
}

// New builds a server over an opened store, deriving the initial
// published state from the store's committed roots. When cfg.Follow is
// set, the store enters replica mode (local writes refused from here on)
// and the follow loop starts immediately — the server replicates even
// before Serve is called.
func New(store *intrinsic.Store, cfg Config) (*Server, error) {
	if cfg.Follow != "" {
		store.EnterReplica()
	}
	st, err := stateFromStore(store)
	if err != nil {
		return nil, err
	}
	srv := &Server{cfg: cfg, store: store, conns: map[net.Conn]struct{}{}, start: time.Now()}
	if cfg.Follow != "" {
		srv.role.Store(int32(wire.RoleFollower))
	}
	srv.shutdownCh = make(chan struct{})
	srv.notifyCommit() // seed the commit-signal channel
	if n := cfg.idemCacheSize(); n > 0 {
		srv.idem = newIdemCache(n)
	}
	srv.state.Store(st)
	reg := cfg.Registry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	srv.m = newServerMetrics(reg)
	srv.planModel = plan.NewModel(reg)
	// Derived gauges: values that already live elsewhere, captured at
	// snapshot time so HEALTH, STATS and /metrics all read one consistent
	// Snapshot instead of re-loading atomics field by field.
	reg.GaugeFunc("dbpl_server_uptime_ns", func() int64 { return int64(time.Since(srv.start)) })
	reg.GaugeFunc("dbpl_server_roots", func() int64 { return int64(len(srv.state.Load().roots)) })
	reg.GaugeFunc("dbpl_index_defs", func() int64 { return int64(len(srv.state.Load().idx.Defs())) })
	reg.GaugeFunc("dbpl_index_extents", func() int64 { return int64(srv.state.Load().idx.Types()) })
	reg.GaugeFunc("dbpl_server_degraded", func() int64 {
		if srv.degraded.Load() {
			return 1
		}
		return 0
	})
	reg.GaugeFunc("dbpl_store_durable_end", func() int64 { return store.DurableEnd() })
	// The acked-end watermark: equal to the durable end except under
	// DurAsync, where it runs ahead by the acked-but-unsynced window.
	reg.GaugeFunc("dbpl_server_acked_end", func() int64 {
		if ae := srv.ackedEnd.Load(); ae > store.DurableEnd() {
			return ae
		}
		return store.DurableEnd()
	})
	reg.GaugeFunc("dbpl_server_readonly", func() int64 {
		if wire.Role(srv.role.Load()) != wire.RolePrimary {
			return 1
		}
		return 0
	})
	// Failover observability: the promotion epoch (the store's, so it is
	// exactly what the log holds) and the current role, for HEALTH, STATS
	// and /metrics — a client picks the new primary as the highest-epoch
	// node reporting RolePrimary.
	reg.GaugeFunc("dbpl_server_epoch", func() int64 { return int64(store.Epoch()) })
	reg.GaugeFunc("dbpl_repl_role", func() int64 { return int64(srv.role.Load()) })
	if n := cfg.slowLogSize(); n > 0 {
		srv.slow = telemetry.NewSlowLog(n, cfg.slowOpThreshold())
	}
	if cfg.TraceSampleRate > 0 {
		if n := cfg.traceRingSize(); n > 0 {
			srv.traces = rtrace.NewRing(n)
			srv.sampler = rtrace.NewSampler(cfg.TraceSampleRate)
			reg.GaugeFunc("dbpl_trace_total", srv.traces.Total)
		}
	}
	if cfg.Follow != "" {
		f := &followerState{done: make(chan struct{}), stop: make(chan struct{})}
		srv.follower = f
		reg.GaugeFunc("dbpl_repl_primary_end", func() int64 { return f.primaryEnd.Load() })
		reg.GaugeFunc("dbpl_repl_lag_bytes", func() int64 {
			if lag := f.primaryEnd.Load() - store.DurableEnd(); lag > 0 {
				return lag
			}
			return 0
		})
		go srv.followLoop()
	}
	// The committer starts whenever group durability is configured — even
	// on a follower, where it idles: a promoted follower must be able to
	// ack coalesced writes immediately, and starting the goroutine late
	// would race every reader of commitCh.
	if cfg.Durability != DurPerCommit {
		srv.commitCh = make(chan *commitReq, cfg.groupMaxBatch())
		srv.committerDone = make(chan struct{})
		go srv.committerLoop()
	}
	return srv, nil
}

// Telemetry returns the server's metrics registry (the one STATS and the
// ops endpoint serve).
func (s *Server) Telemetry() *telemetry.Registry { return s.m.reg }

// SlowOps returns the retained slow-op log entries, newest first; nil
// when the log is disabled.
func (s *Server) SlowOps() []telemetry.SlowOp {
	if s.slow == nil {
		return nil
	}
	return s.slow.Snapshot()
}

// Traces returns the retained completed trace trees, newest first; nil
// when tracing is disabled.
func (s *Server) Traces() []rtrace.Data {
	if s.traces == nil {
		return nil
	}
	return s.traces.Snapshot()
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Addr returns the listening address, nil before Serve.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// ListenAndServe listens on addr (":7070" style) and serves until
// Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Shutdown, returning
// ErrServerClosed after a clean drain.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	if s.draining.Load() {
		ln.Close()
		return ErrServerClosed
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.draining.Load() {
				return ErrServerClosed
			}
			return err
		}
		if s.draining.Load() {
			conn.Close()
			continue
		}
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// Shutdown drains the server: no new connections or requests are
// accepted, requests already received run to completion and their
// responses flush, then a final commit group is appended so shutdown is a
// durable boundary. When ctx expires first, remaining connections are
// force-closed. The store is left open — the caller owns it.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	// Wake replication streamers (select-blocked, not read-blocked) and the
	// follow loop, and sever the follower's upstream link so its blocked
	// stream read fails now rather than at the heartbeat deadline.
	s.shutdownOnce.Do(func() { close(s.shutdownCh) })
	if s.follower != nil {
		s.follower.closeConn()
	}
	s.mu.Lock()
	if s.ln != nil {
		s.ln.Close()
	}
	// Interrupt idle reads: a session blocked waiting for the next request
	// header wakes with a deadline error and exits; a session mid-handle
	// is untouched (writes have their own deadline) and finishes.
	for c := range s.conns {
		c.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-done
	}

	if s.follower != nil {
		<-s.follower.done
	}

	// Every request handler has returned (wg), so no writer can enqueue
	// again: close the commit queue and let the committer drain what is
	// left before the final durable boundary below.
	if s.commitCh != nil {
		s.committerStop.Do(func() { close(s.commitCh) })
		<-s.committerDone
	}

	// Final fsync: an (often empty) commit group marking the shutdown
	// boundary durable. A poisoned write path must not append it — the
	// store's in-memory root table has diverged from the committed state,
	// and the group would durably encode that divergence. A follower's log
	// grows only through ApplyGroup (every applied group was already
	// fsynced), so there is nothing to append — and the replica-mode store
	// would refuse the attempt.
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	if s.poisoned != nil {
		return s.poisoned
	}
	if wire.Role(s.role.Load()) != wire.RolePrimary {
		return nil
	}
	if _, err := s.store.Commit(); err != nil {
		return err
	}
	return nil
}

// session is the per-connection protocol state.
type session struct {
	srv   *Server
	inTxn bool
	base  *state // snapshot pinned at BEGIN
	ops   []txnOp
	// overlay indexes the last buffered op per name, for read-your-writes.
	overlay map[string]int
	// tr is the current request's span tree, nil when the request is
	// unsampled. Set by serveConn around each dispatch; handlers thread
	// it into the plan/commit paths.
	tr *rtrace.Trace
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	s.m.sessions.Add(1)
	defer s.m.sessions.Add(-1)
	sess := &session{srv: s}
	readTO := timeoutOr(s.cfg.ReadTimeout, 30*time.Second)
	writeTO := timeoutOr(s.cfg.WriteTimeout, 30*time.Second)
	for {
		if s.draining.Load() {
			return // an implicit abort of any open transaction
		}
		rawOp, rawFields, err := readRequest(s, conn, s.cfg.maxFrame(), readTO)
		if err != nil {
			var we *wire.WireError
			if errors.As(err, &we) {
				// Protocol violation: report it, then close — the stream
				// is not trustworthy past a framing error.
				s.logf("server: %v: %v", conn.RemoteAddr(), we)
				if writeTO > 0 {
					conn.SetWriteDeadline(time.Now().Add(writeTO))
				}
				wire.WriteFrame(conn, s.cfg.maxFrame(), wire.OpError, wire.ErrorFields(we)...)
			}
			return
		}
		// Trace extraction happens before dispatch so every handler sees
		// the base opcode. A traced frame with a malformed trace field is a
		// protocol violation like any other framing error.
		op, trace, fields, traced, terr := wire.SplitTrace(rawOp, rawFields)
		if terr != nil {
			var we *wire.WireError
			errors.As(terr, &we)
			s.logf("server: %v: %v", conn.RemoteAddr(), we)
			if writeTO > 0 {
				conn.SetWriteDeadline(time.Now().Add(writeTO))
			}
			wire.WriteFrame(conn, s.cfg.maxFrame(), wire.OpError, wire.ErrorFields(we)...)
			return
		}
		// REPLICATE consumes the connection: it becomes a one-way stream of
		// REPDATA/REPHEARTBEAT frames until the peer hangs up or we drain.
		// Trace IDs are per-request and do not apply to a stream.
		if op == wire.OpReplicate {
			s.streamReplicate(conn, fields, writeTO)
			return
		}
		began := time.Now()
		// Head sampling: the wire trace ID (or a server-minted one when
		// the client did not stamp) decides whether this request records
		// a span tree. The monitoring opcodes are never traced — HEALTH
		// polls every second on a replica set and TRACES would trace its
		// own fetch; their span trees are noise that would churn the ring.
		var tr *rtrace.Trace
		if s.traces != nil && op != wire.OpHealth && op != wire.OpStats && op != wire.OpTraces {
			id := trace
			if id == 0 {
				id = rtrace.NextID()
			}
			if s.sampler.Sample(id) {
				tr = rtrace.New(id, wire.OpName(op))
			}
		}
		sess.tr = tr
		var respOp byte
		var respFields [][]byte
		// Admission control: a request past the in-flight cap is shed here
		// — typed refusal with a backoff hint, nothing executed, nothing
		// queued — so overload cannot grow the server's memory or wedge
		// its handlers. HEALTH, STATS and TRACES bypass the gate (and are
		// not counted): a monitor must get an answer from exactly the
		// server that is refusing everyone else.
		if op == wire.OpHealth || op == wire.OpStats || op == wire.OpTraces {
			respOp, respFields = s.handle(sess, op, fields)
		} else if s.admit() {
			respOp, respFields = s.handle(sess, op, fields)
			s.m.inflight.Add(-1)
		} else {
			s.m.shed.Inc()
			respOp, respFields = errResp(&wire.WireError{
				Code:       wire.CodeOverloaded,
				Msg:        "server overloaded: in-flight request cap reached",
				RetryAfter: s.cfg.retryAfterHint(),
			})
		}
		sess.tr = nil
		dur := time.Since(began)
		// The latency exemplar is the sampled trace's ID when there is
		// one (its span tree is in the ring), else the raw wire trace (an
		// unsampled but stamped request is still findable client-side).
		exemplar := tr.ID()
		if exemplar == 0 {
			exemplar = trace
		}
		s.m.observe(op, dur, respOp, respFields, exemplar)
		if s.slow != nil && dur >= s.slow.Threshold() {
			respBytes := 0
			for _, f := range respFields {
				respBytes += len(f)
			}
			var errCode string
			if respOp == wire.OpError && len(respFields) > 0 && len(respFields[0]) == 1 {
				errCode = wire.Code(respFields[0][0]).String()
			}
			s.slow.Record(telemetry.SlowOp{
				Time:     began,
				Op:       wire.OpName(op),
				Duration: dur,
				Session:  conn.RemoteAddr().String(),
				Trace:    exemplar,
				Bytes:    respBytes,
				Err:      errCode,
			})
		}
		if tr != nil {
			tr.Finish()
			// A request slow enough for the slow-op ring has its span
			// tree force-retained: the trace that explains a slow op must
			// survive ring churn until an operator fetches it.
			forced := s.slow != nil && dur >= s.slow.Threshold()
			s.traces.Record(tr.Data(), forced)
		}
		if traced {
			// Echo the trace so the client can tie this response to its
			// call; see docs/OBSERVABILITY.md.
			respOp, respFields = wire.AppendTrace(respOp, trace, respFields)
		}
		if writeTO > 0 {
			conn.SetWriteDeadline(time.Now().Add(writeTO))
		}
		if err := wire.WriteFrame(conn, s.cfg.maxFrame(), respOp, respFields...); err != nil {
			return
		}
		if writeTO > 0 {
			conn.SetWriteDeadline(time.Time{})
		}
	}
}

// admit claims an in-flight slot, reporting false (shed) when the cap is
// reached. The caller must release the slot with m.inflight.Add(-1) once
// the response is produced. The in-flight gauge doubles as the admission
// counter — Gauge.Add returns the post-increment value, exactly like the
// bare atomic it replaced.
func (s *Server) admit() bool {
	n := s.m.inflight.Add(1)
	if cap := s.cfg.maxInFlight(); cap > 0 && n > cap {
		s.m.inflight.Add(-1)
		return false
	}
	return true
}

// readRequest reads one request frame. The wait for the header may block
// indefinitely (idle connection; Shutdown interrupts it via read
// deadline); once the header has arrived the remainder must land within
// bodyTimeout.
func readRequest(s *Server, conn net.Conn, max int, bodyTimeout time.Duration) (byte, [][]byte, error) {
	conn.SetReadDeadline(time.Time{})
	// Re-check draining after clearing the deadline: Shutdown may have set
	// its wake-up deadline between our caller's check and the clear above,
	// and it must not be lost or this connection idles until force-close.
	if s.draining.Load() {
		conn.SetReadDeadline(time.Now())
	}
	r := &deadlineReader{conn: conn, bodyTimeout: bodyTimeout}
	return wire.ReadFrame(r, max)
}

// deadlineReader arms the body deadline after the first successful read
// (the frame header), bounding how long a half-sent request can hold the
// session.
type deadlineReader struct {
	conn        net.Conn
	bodyTimeout time.Duration
	started     bool
}

func (d *deadlineReader) Read(p []byte) (int, error) {
	n, err := d.conn.Read(p)
	if err == nil && !d.started && d.bodyTimeout > 0 {
		d.started = true
		d.conn.SetReadDeadline(time.Now().Add(d.bodyTimeout))
	}
	return n, err
}

// handle dispatches one request and returns the response frame. All
// failures become OpError frames; a handler panic is confined to the
// request that caused it.
func (s *Server) handle(sess *session, op byte, fields [][]byte) (respOp byte, respFields [][]byte) {
	defer func() {
		if r := recover(); r != nil {
			s.logf("server: panic handling op %#x: %v", op, r)
			respOp = wire.OpError
			respFields = wire.ErrorFields(&wire.WireError{Code: wire.CodeInternal, Msg: fmt.Sprint(r)})
		}
	}()
	// HEALTH, STATS and TRACES answer before the drain check: a server
	// that is shutting down (or poisoned) reports its state instead of
	// only refusing work.
	if op == wire.OpHealth {
		return s.handleHealth()
	}
	if op == wire.OpStats {
		return s.handleStats(fields)
	}
	if op == wire.OpTraces {
		return s.handleTraces(fields)
	}
	if s.draining.Load() {
		return errResp(&wire.WireError{Code: wire.CodeShutdown, Msg: "server is draining"})
	}
	// A non-primary refuses every mutation by role — distinct from
	// CodeDegraded (this server is healthy) and never retryable against
	// this server. A follower answers CodeReadOnly naming its upstream; a
	// fenced ex-primary answers CodeFenced naming its successor, so a
	// misdirected client can re-aim. PROMOTE is deliberately not in the
	// refused set: a follower is exactly what gets promoted.
	if r := wire.Role(s.role.Load()); r != wire.RolePrimary {
		switch op {
		case wire.OpPut, wire.OpDelete, wire.OpBegin, wire.OpCommit,
			wire.OpCreateIndex, wire.OpDropIndex:
			return errResp(s.refuseWrite(r))
		}
	}
	switch op {
	case wire.OpPing:
		return wire.OpOK, nil
	case wire.OpGet:
		return s.handleGet(sess, fields)
	case wire.OpPut:
		return s.handlePut(sess, fields)
	case wire.OpDelete:
		return s.handleDelete(sess, fields)
	case wire.OpJoin:
		return s.handleJoin(sess, fields)
	case wire.OpBegin:
		if sess.inTxn {
			return errResp(&wire.WireError{Code: wire.CodeTxn, Msg: "BEGIN inside a transaction"})
		}
		sess.inTxn = true
		sess.base = s.state.Load()
		sess.ops = nil
		sess.overlay = map[string]int{}
		return wire.OpOK, nil
	case wire.OpCommit:
		if len(fields) > 1 {
			return badReq("COMMIT wants 0 or 1 fields, got %d", len(fields))
		}
		if !sess.inTxn {
			return errResp(&wire.WireError{Code: wire.CodeTxn, Msg: "COMMIT outside a transaction"})
		}
		var key string
		if len(fields) == 1 {
			key = string(fields[0])
		}
		ops := sess.ops
		sess.endTxn()
		if _, err := s.commit(ops, key, sess.tr); err != nil {
			return errResp(toWireError(err))
		}
		return wire.OpOK, nil
	case wire.OpAbort:
		if !sess.inTxn {
			return errResp(&wire.WireError{Code: wire.CodeTxn, Msg: "ABORT outside a transaction"})
		}
		sess.endTxn()
		return wire.OpOK, nil
	case wire.OpNames:
		names := sess.viewNames(s)
		out := make([][]byte, len(names))
		for i, n := range names {
			out[i] = []byte(n)
		}
		return wire.OpOK, out
	case wire.OpCreateIndex:
		return s.handleCreateIndex(sess, fields)
	case wire.OpDropIndex:
		return s.handleDropIndex(sess, fields)
	case wire.OpExplain:
		return s.handleExplain(fields)
	case wire.OpPromote:
		return s.handlePromote(fields)
	default:
		return errResp(&wire.WireError{Code: wire.CodeUnknownOp, Msg: fmt.Sprintf("opcode %#x", op)})
	}
}

func (sess *session) endTxn() {
	sess.inTxn = false
	sess.base = nil
	sess.ops = nil
	sess.overlay = nil
}

func errResp(we *wire.WireError) (byte, [][]byte) {
	return wire.OpError, wire.ErrorFields(we)
}

// refuseWrite builds the role-gated write refusal: CodeReadOnly for a
// follower (naming the upstream primary), CodeFenced for a demoted
// primary (naming its successor when known). Used both at dispatch and
// at the commit decision under commitMu, so a write admitted before a
// fence cannot be acked after it.
func (s *Server) refuseWrite(r wire.Role) *wire.WireError {
	if r == wire.RoleFenced {
		s.m.fencedRefusals.Inc()
		msg := "fenced: a primary with a higher promotion epoch exists; writes refused"
		if p := s.fencedBy.Load(); p != nil && *p != "" {
			msg = fmt.Sprintf("fenced: the primary is now %s (higher promotion epoch); writes must go there", *p)
		}
		return &wire.WireError{Code: wire.CodeFenced, Msg: msg}
	}
	s.m.replReadOnly.Inc()
	return &wire.WireError{Code: wire.CodeReadOnly,
		Msg: fmt.Sprintf("read-only replication follower of %s; writes must go to the primary", s.cfg.Follow)}
}

// toWireError folds any server-side failure into the wire taxonomy,
// preserving the message so the remote diagnosis matches the local one.
func toWireError(err error) *wire.WireError {
	var we *wire.WireError
	if errors.As(err, &we) {
		return we
	}
	code := wire.CodeInternal
	switch {
	case errors.Is(err, intrinsic.ErrNoRoot):
		code = wire.CodeNoRoot
	case errors.Is(err, intrinsic.ErrNotConforming):
		code = wire.CodeNotConforming
	case errors.Is(err, intrinsic.ErrInconsistent), errors.Is(err, intrinsic.ErrMigrationRequired):
		code = wire.CodeInconsistent
	case errors.Is(err, intrinsic.ErrCorrupt):
		code = wire.CodeCorrupt
	case errors.Is(err, iofault.ErrIOFailed), errors.Is(err, intrinsic.ErrPoisoned):
		code = wire.CodeIO
	case errors.Is(err, intrinsic.ErrClosed):
		code = wire.CodeShutdown
	case errors.Is(err, intrinsic.ErrReplica):
		code = wire.CodeReadOnly
	case errors.Is(err, intrinsic.ErrBadOffset), errors.Is(err, intrinsic.ErrUnverified),
		errors.Is(err, intrinsic.ErrBadGroup):
		code = wire.CodeBadRequest
	case errors.Is(err, codec.ErrCorrupt), errors.Is(err, codec.ErrBadMagic),
		errors.Is(err, codec.ErrBadVersion), errors.Is(err, codec.ErrLimitExceeded),
		errors.Is(err, codec.ErrUnsupported):
		code = wire.CodeBadRequest
	}
	return &wire.WireError{Code: code, Msg: err.Error()}
}

// badReq shortens the common decode-failure response.
func badReq(format string, args ...any) (byte, [][]byte) {
	return errResp(&wire.WireError{Code: wire.CodeBadRequest, Msg: fmt.Sprintf(format, args...)})
}

// ---------------------------------------------------------------------------
// Reads: GET, JOIN, NAMES
// ---------------------------------------------------------------------------

func (s *Server) handleGet(sess *session, fields [][]byte) (byte, [][]byte) {
	if len(fields) != 1 {
		return badReq("GET wants 1 field, got %d", len(fields))
	}
	t, err := wire.UnmarshalType(fields[0])
	if err != nil {
		return errResp(toWireError(err))
	}
	var packed []core.Packed
	if sess.inTxn {
		packed = sess.getOverlay(t)
	} else {
		// The lock-free hot path: one atomic load, then the planner-chosen
		// physical path against that snapshot.
		packed = s.plannedGet(sess.tr, s.state.Load(), t)
	}
	out := make([][]byte, len(packed))
	for i, p := range packed {
		img, err := codec.MarshalTagged(p.Value, p.Witness)
		if err != nil {
			return errResp(toWireError(err))
		}
		out[i] = img
	}
	return wire.OpValues, out
}

// planInput sizes one GET for the planner: the snapshot's member and
// extent counts, plus — when the requested type is a record — the
// declared index on one of its fields with the fewest candidates. All
// O(fields) map lookups, no data touched.
func planInput(st *state, want *types.Interned) plan.GetInput {
	in := plan.GetInput{N: st.idx.Len(), Types: st.idx.Types()}
	if rt, ok := want.Type().(*types.Record); ok {
		for _, fld := range rt.Fields() {
			if c, ok := st.idx.CandidateCount(fld.Label); ok {
				if in.Field == "" || c < in.Candidates {
					in.Field, in.Candidates = fld.Label, c
				}
			}
		}
	}
	return in
}

// plannedGet executes one non-transactional GET through the cost-chosen
// physical path. All three paths return the same members in insertion
// order (the plan/index property tests); the choice only affects time,
// and the observed time feeds back into the model.
func (s *Server) plannedGet(tr *rtrace.Trace, st *state, t types.Type) []core.Packed {
	want := types.Intern(t)
	psp := tr.Start(0, "plan")
	p := s.planModel.PlanGet(planInput(st, want))
	tr.End(psp)
	s.m.planChosen[p.Path].Inc()
	esp := tr.Start(0, "exec:"+p.Path.String())
	began := time.Now()
	var packed []core.Packed
	items := 0
	switch p.Path {
	case plan.PathExtent:
		entries, _ := st.idx.GetEntries(want)
		items = len(entries)
		packed = make([]core.Packed, len(entries))
		for i, e := range entries {
			packed[i] = core.Packed{Value: e.Dyn.Value(), Witness: e.Dyn.Type()}
		}
	case plan.PathIndex:
		cands, _ := st.idx.Candidates(p.Field)
		items = len(cands)
		for _, e := range cands {
			if types.SubtypeInterned(e.Dyn.Interned(), want) {
				packed = append(packed, core.Packed{Value: e.Dyn.Value(), Witness: e.Dyn.Type()})
			}
		}
	default: // PathScan: the sharded COW engine
		packed = st.db.Get(t)
		items = p.N
	}
	tr.End(esp)
	s.planModel.Observe(p.Path, time.Since(began), items, len(packed), p.N)
	return packed
}

// getOverlay is GET inside a transaction: the pinned snapshot with the
// session's buffered writes overlaid (read-your-writes). Results are in
// name order; only the lock-free non-transactional path promises the
// database's insertion order.
func (sess *session) getOverlay(t types.Type) []core.Packed {
	want := types.Intern(t)
	var out []core.Packed
	for _, nd := range sess.viewBindings() {
		if nd.dyn.IsInterned(want) {
			out = append(out, core.Packed{Value: nd.dyn.Value(), Witness: nd.dyn.Type()})
		}
	}
	return out
}

type namedDyn struct {
	name string
	dyn  *dynamic.Dynamic
}

// viewBindings materializes the session's transactional view in name
// order.
func (sess *session) viewBindings() []namedDyn {
	names := make([]string, 0, len(sess.base.roots)+len(sess.overlay))
	for n := range sess.base.roots {
		if _, shadowed := sess.overlay[n]; !shadowed {
			names = append(names, n)
		}
	}
	for n := range sess.overlay {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]namedDyn, 0, len(names))
	for _, n := range names {
		if i, ok := sess.overlay[n]; ok {
			if op := sess.ops[i]; !op.del {
				out = append(out, namedDyn{name: n, dyn: op.dyn})
			}
			continue
		}
		out = append(out, namedDyn{name: n, dyn: sess.base.roots[n]})
	}
	return out
}

// viewNames lists the root names visible to the session.
func (sess *session) viewNames(s *Server) []string {
	if sess.inTxn {
		bs := sess.viewBindings()
		names := make([]string, len(bs))
		for i, b := range bs {
			names[i] = b.name
		}
		return names
	}
	st := s.state.Load()
	names := make([]string, 0, len(st.roots))
	for n := range st.roots {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func (s *Server) handleJoin(sess *session, fields [][]byte) (byte, [][]byte) {
	if len(fields) != 2 {
		return badReq("JOIN wants 2 fields, got %d", len(fields))
	}
	t1, err := wire.UnmarshalType(fields[0])
	if err != nil {
		return errResp(toWireError(err))
	}
	t2, err := wire.UnmarshalType(fields[1])
	if err != nil {
		return errResp(toWireError(err))
	}
	var vals1, vals2 []value.Value
	if sess.inTxn {
		for _, p := range sess.getOverlay(t1) {
			vals1 = append(vals1, p.Value)
		}
		for _, p := range sess.getOverlay(t2) {
			vals2 = append(vals2, p.Value)
		}
	} else {
		st := s.state.Load()
		vals1 = st.db.GetValues(t1)
		vals2 = st.db.GetValues(t2)
	}
	r1, r2 := relation.New(vals1...), relation.New(vals2...)
	jp := relation.PlanJoin(r1, r2)
	if jp.Partition {
		s.m.joinPartition.Inc()
	} else {
		s.m.joinNested.Inc()
	}
	joined := relation.JoinPlanned(r1, r2, jp)
	members := joined.Members()
	out := make([][]byte, len(members))
	for i, m := range members {
		img, err := codec.MarshalTagged(m, nil)
		if err != nil {
			return errResp(toWireError(err))
		}
		out[i] = img
	}
	return wire.OpValues, out
}

// ---------------------------------------------------------------------------
// Writes: PUT, DELETE, commit
// ---------------------------------------------------------------------------

func (s *Server) handlePut(sess *session, fields [][]byte) (byte, [][]byte) {
	if len(fields) != 2 && len(fields) != 3 {
		return badReq("PUT wants 2 or 3 fields, got %d", len(fields))
	}
	name := string(fields[0])
	if name == "" {
		return badReq("PUT with empty root name")
	}
	v, t, err := codec.UnmarshalTagged(fields[1])
	if err != nil {
		return errResp(toWireError(err))
	}
	d, err := dynamic.MakeAt(v, t)
	if err != nil {
		return errResp(&wire.WireError{Code: wire.CodeNotConforming, Msg: err.Error()})
	}
	op := txnOp{name: name, dyn: d}
	if sess.inTxn {
		sess.buffer(op)
		return wire.OpOK, nil
	}
	var key string
	if len(fields) == 3 {
		key = string(fields[2])
	}
	if _, err := s.commit([]txnOp{op}, key, sess.tr); err != nil {
		return errResp(toWireError(err))
	}
	return wire.OpOK, nil
}

func (s *Server) handleDelete(sess *session, fields [][]byte) (byte, [][]byte) {
	if len(fields) != 1 && len(fields) != 2 {
		return badReq("DELETE wants 1 or 2 fields, got %d", len(fields))
	}
	name := string(fields[0])
	op := txnOp{name: name, del: true}
	if sess.inTxn {
		existed := false
		if i, ok := sess.overlay[name]; ok {
			existed = !sess.ops[i].del
		} else {
			_, existed = sess.base.roots[name]
		}
		sess.buffer(op)
		return wire.OpOK, [][]byte{boolField(existed)}
	}
	var key string
	if len(fields) == 2 {
		key = string(fields[1])
	}
	existed, err := s.commit([]txnOp{op}, key, sess.tr)
	if err != nil {
		return errResp(toWireError(err))
	}
	return wire.OpOK, [][]byte{boolField(existed[0])}
}

// ---------------------------------------------------------------------------
// Index administration: CREATEINDEX, DROPINDEX, EXPLAIN
// ---------------------------------------------------------------------------

// handleCreateIndex declares a field-value index and backfills it from
// the committed membership. The *definition* is durable (an 'X' record in
// the commit group); the contents rebuild from the roots on every open.
// Refused inside a transaction — index DDL is not transactional.
func (s *Server) handleCreateIndex(sess *session, fields [][]byte) (byte, [][]byte) {
	if len(fields) != 1 && len(fields) != 2 {
		return badReq("CREATEINDEX wants 1 or 2 fields, got %d", len(fields))
	}
	field := string(fields[0])
	if field == "" {
		return badReq("CREATEINDEX with empty field name")
	}
	if sess.inTxn {
		return errResp(&wire.WireError{Code: wire.CodeTxn, Msg: "CREATEINDEX inside a transaction"})
	}
	var key string
	if len(fields) == 2 {
		key = string(fields[1])
	}
	created, err := s.alterIndex(field, true, key)
	if err != nil {
		return errResp(toWireError(err))
	}
	return wire.OpOK, [][]byte{boolField(created)}
}

// handleDropIndex removes a field-value index declaration; the response
// reports whether it existed.
func (s *Server) handleDropIndex(sess *session, fields [][]byte) (byte, [][]byte) {
	if len(fields) != 1 && len(fields) != 2 {
		return badReq("DROPINDEX wants 1 or 2 fields, got %d", len(fields))
	}
	field := string(fields[0])
	if field == "" {
		return badReq("DROPINDEX with empty field name")
	}
	if sess.inTxn {
		return errResp(&wire.WireError{Code: wire.CodeTxn, Msg: "DROPINDEX inside a transaction"})
	}
	var key string
	if len(fields) == 2 {
		key = string(fields[1])
	}
	existed, err := s.alterIndex(field, false, key)
	if err != nil {
		return errResp(toWireError(err))
	}
	return wire.OpOK, [][]byte{boolField(existed)}
}

// alterIndex is the index-DDL commit path: like commit(), it serializes
// under commitMu, refuses on a poisoned write path, deduplicates retries
// through the idempotency cache, makes the definition change durable in
// its own commit group, and only then publishes the successor state (same
// roots and database, the index set advanced). On store failure the log
// replay in rollback() also reverts the definition — defs reload from the
// log — so memory and disk cannot diverge. Reports whether anything
// changed (created / existed).
func (s *Server) alterIndex(field string, create bool, key string) (bool, error) {
	began := time.Now()
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	if s.poisoned != nil {
		s.m.degraded.Inc()
		return false, &wire.WireError{Code: wire.CodeDegraded, Msg: s.poisoned.Error()}
	}
	if r := wire.Role(s.role.Load()); r != wire.RolePrimary {
		return false, s.refuseWrite(r)
	}
	if key != "" {
		if res, ok := s.idem.get(key); ok {
			s.m.idemHits.Inc()
			return len(res) == 1 && res[0], nil
		}
	}
	var changed bool
	if create {
		changed = s.store.DeclareIndex(field)
	} else {
		changed = s.store.DropIndexDef(field)
	}
	if changed {
		if _, err := s.store.Commit(); err != nil {
			s.rollback(err)
			return false, err
		}
		cur := s.state.Load()
		next := &state{roots: cur.roots, db: cur.db}
		if create {
			next.idx = cur.idx.WithField(index.Def{Field: field})
		} else {
			next.idx, _ = cur.idx.DropField(field)
		}
		s.state.Store(next)
		s.notifyCommit()
		s.m.commits.Inc()
		s.m.commitSeconds.ObserveDuration(time.Since(began))
		s.m.commitOps.Observe(1)
	}
	if key != "" {
		s.idem.put(key, []bool{changed})
	}
	return changed, nil
}

// handleExplain is the EXPLAIN opcode: one type field renders the GET
// plan the server would choose right now, two render the JOIN plan. Pure
// read — nothing executes, nothing is counted as a planner decision.
func (s *Server) handleExplain(fields [][]byte) (byte, [][]byte) {
	st := s.state.Load()
	switch len(fields) {
	case 1:
		t, err := wire.UnmarshalType(fields[0])
		if err != nil {
			return errResp(toWireError(err))
		}
		p := s.planModel.PlanGet(planInput(st, types.Intern(t)))
		return wire.OpOK, [][]byte{[]byte(p.String())}
	case 2:
		t1, err := wire.UnmarshalType(fields[0])
		if err != nil {
			return errResp(toWireError(err))
		}
		t2, err := wire.UnmarshalType(fields[1])
		if err != nil {
			return errResp(toWireError(err))
		}
		r1 := relation.New(st.db.GetValues(t1)...)
		r2 := relation.New(st.db.GetValues(t2)...)
		return wire.OpOK, [][]byte{[]byte(relation.PlanJoin(r1, r2).String())}
	default:
		return badReq("EXPLAIN wants 1 or 2 fields, got %d", len(fields))
	}
}

func boolField(b bool) []byte {
	if b {
		return []byte{1}
	}
	return []byte{0}
}

func (sess *session) buffer(op txnOp) {
	sess.ops = append(sess.ops, op)
	sess.overlay[op.name] = len(sess.ops) - 1
}

// commit turns ops into one durable commit group and publishes the
// successor state, reporting per-op whether each name existed in the
// committed state the group was applied to (computed under commitMu, so
// concurrent DELETEs of one name see exactly one existed=true). Writers
// serialize here; readers never block. On store failure the log is
// replayed back to the last durable group and the published state is
// untouched, so a GET during or after a failed commit still observes only
// committed roots.
//
// key, when non-empty, is the client's idempotency key: if the group was
// already applied (the acknowledgement was lost and the client retried),
// the recorded result is returned without touching the store, so a retry
// applies exactly once. Only durable applications are recorded — a failed
// commit's retry re-executes.
func (s *Server) commit(ops []txnOp, key string, tr *rtrace.Trace) ([]bool, error) {
	if len(ops) == 0 {
		return nil, nil
	}
	if s.commitCh != nil {
		// DurGroup/DurAsync: hand the commit to the coalescer, which
		// batches it with every concurrent writer's under one shared fsync
		// (see coalesce.go). The serial path below is DurPerCommit.
		return s.coalescedCommit(ops, key, tr)
	}
	began := time.Now()
	csp := tr.Start(0, "commit")
	defer tr.End(csp)
	lsp := tr.Start(csp, "lock-wait")
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	tr.End(lsp)
	if s.poisoned != nil {
		s.m.degraded.Inc()
		return nil, &wire.WireError{Code: wire.CodeDegraded, Msg: s.poisoned.Error()}
	}
	// The fence decision point: a write admitted while this server was
	// still primary, but reaching the commit decision after a fence, is
	// refused here — a stale primary can never ack a write after its
	// successor's promotion.
	if r := wire.Role(s.role.Load()); r != wire.RolePrimary {
		return nil, s.refuseWrite(r)
	}
	if key != "" {
		if existed, ok := s.idem.get(key); ok {
			s.m.idemHits.Inc()
			return existed, nil
		}
	}
	cur := s.state.Load()
	existed := make([]bool, len(ops))
	ssp := tr.Start(csp, "stage")
	for i, o := range ops {
		_, existed[i] = cur.roots[o.name]
		if o.del {
			s.store.Unbind(o.name)
			continue
		}
		if err := s.store.Bind(o.name, o.dyn.Value(), o.dyn.Type()); err != nil {
			s.rollback(err)
			return nil, err
		}
	}
	tr.End(ssp)
	fsp := tr.Start(csp, "append-fsync")
	if _, err := s.store.Commit(); err != nil {
		s.rollback(err)
		return nil, err
	}
	tr.End(fsp)
	psp := tr.Start(csp, "publish")
	next, istats := cur.apply(ops)
	s.state.Store(next)
	// Mark before the wakeup: a streamer woken by notifyCommit must see
	// this commit's trace stamp when it ships the group.
	s.markCommit(tr.ID())
	s.notifyCommit()
	tr.End(psp)
	if key != "" {
		s.idem.put(key, existed)
	}
	s.m.indexTouched.Add(uint64(istats.EntriesTouched))
	// Commit-group instrumentation covers only durable publications; a
	// refused or failed group shows up in the error counters instead. The
	// latency includes the wait for commitMu — queueing behind a slow disk
	// is exactly what the histogram should expose.
	s.m.commits.Inc()
	s.m.commitSeconds.ObserveDurationExemplar(time.Since(began), tr.ID())
	s.m.commitOps.Observe(int64(len(ops)))
	return existed, nil
}

// rollback reverts a failed commit by replaying the log: in-memory store
// state returns to the last durable commit, which is exactly the published
// state. If the replay itself fails (plausibly the same failing disk), the
// store's roots no longer match the published ones and the next successful
// commit group would durably drop committed roots — so the write path is
// poisoned instead: commit and Shutdown's final group refuse with the
// rollback failure until the process restarts. The caller holds commitMu.
func (s *Server) rollback(cause error) {
	if aerr := s.store.Abort(); aerr != nil {
		s.poisoned = fmt.Errorf("server: write path poisoned (rollback after %v failed): %w", cause, aerr)
		s.degraded.Store(true)
		s.logf("%v", s.poisoned)
	}
}

// ---------------------------------------------------------------------------
// Failover: PROMOTE, fencing
// ---------------------------------------------------------------------------

// handlePromote is the PROMOTE opcode's two faces. With no fields it is
// the admin promotion: this server (typically a follower whose primary
// died) bumps its epoch durably and becomes the primary; gated by
// Config.AllowPromote. With fence fields it is the notification a new
// primary sends its predecessor: a higher epoch exists at newPrimary —
// demote yourself. Fence notifications are always accepted (refusing to
// learn of a higher epoch would defeat fencing); stale ones are refused.
func (s *Server) handlePromote(fields [][]byte) (byte, [][]byte) {
	epoch, newPrimary, fence, err := wire.DecodePromote(fields)
	if err != nil {
		return errResp(toWireError(err))
	}
	if fence {
		return s.handleFence(epoch, newPrimary)
	}
	if !s.cfg.AllowPromote {
		return errResp(&wire.WireError{Code: wire.CodeBadRequest,
			Msg: "promotion is disabled on this server; start it with -allow-promote"})
	}
	newEpoch, err := s.promote()
	if err != nil {
		return errResp(toWireError(err))
	}
	return wire.OpOK, [][]byte{binary.AppendUvarint(nil, newEpoch)}
}

// promote makes this server the primary: stop following, bump the epoch
// durably (the store refuses while a commit batch is staged), flip the
// role, and tell the old upstream it has been superseded. The epoch
// record is its own commit group, so chained followers receive the
// promotion through the ordinary stream.
func (s *Server) promote() (uint64, error) {
	// Stop the follow loop first, outside commitMu (it may be holding
	// commitMu in applyReplicated right now), so no replicated frame can
	// land after the epoch bump.
	s.stopFollow()
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	if s.poisoned != nil {
		s.m.degraded.Inc()
		return 0, &wire.WireError{Code: wire.CodeDegraded, Msg: s.poisoned.Error()}
	}
	wasPrimary := wire.Role(s.role.Load()) == wire.RolePrimary
	epoch, err := s.store.Promote()
	if err != nil {
		return 0, err
	}
	s.role.Store(int32(wire.RolePrimary))
	s.fencedBy.Store(nil)
	// The epoch record is a durable commit: wake streamers so followers
	// of *this* server learn the new epoch immediately.
	s.notifyCommit()
	s.m.commits.Inc()
	s.logf("server: promoted to primary at epoch %d", epoch)
	if s.cfg.Follow != "" && !wasPrimary {
		// Best effort, retried in the background: the demoted primary may
		// be dead or partitioned right now — that is usually why we were
		// promoted — but must learn of its successor the moment it is
		// reachable, even if it never re-subscribes.
		go s.sendFence(s.cfg.Follow, epoch)
	}
	return epoch, nil
}

// handleFence applies a fence notification: a new primary at a higher
// epoch exists. Stale notifications (epoch not above ours) are refused.
func (s *Server) handleFence(epoch uint64, newPrimary string) (byte, [][]byte) {
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	if epoch <= s.store.Epoch() {
		return errResp(&wire.WireError{Code: wire.CodeBadRequest,
			Msg: fmt.Sprintf("stale fence: epoch %d is not above local epoch %d", epoch, s.store.Epoch())})
	}
	s.fence(epoch, newPrimary)
	return wire.OpOK, nil
}

// fence demotes this server after observing promotion epoch e elsewhere:
// the role becomes RoleFenced and the store itself enters replica mode
// (defense in depth — even a code path that skipped the role check
// cannot append). Idempotent for non-primaries, which are already
// read-only; they still record the successor's address for redirects.
// Caller holds commitMu, so no write decided before the fence can be
// acked after it.
func (s *Server) fence(e uint64, newPrimary string) {
	if newPrimary != "" {
		s.fencedBy.Store(&newPrimary)
	}
	if wire.Role(s.role.Load()) != wire.RolePrimary {
		return
	}
	s.role.Store(int32(wire.RoleFenced))
	s.store.EnterReplica()
	s.logf("server: fenced: observed promotion epoch %d (local epoch %d); entering read-only mode", e, s.store.Epoch())
}

// observeEpoch fences this server when e is above the store's epoch —
// the path for epochs learned passively (a REPLICATE subscriber carrying
// a higher epoch) rather than via a fence notification. Reports whether
// a fence was applied.
func (s *Server) observeEpoch(e uint64, newPrimary string) bool {
	if e <= s.store.Epoch() {
		return false
	}
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	if e <= s.store.Epoch() {
		return false
	}
	s.fence(e, newPrimary)
	return true
}

// sendFence delivers the fence notification to the demoted primary,
// retrying with backoff until any response arrives (a response — even a
// refusal — proves delivery) or the server shuts down.
func (s *Server) sendFence(addr string, epoch uint64) {
	self := ""
	if a := s.Addr(); a != nil {
		self = a.String()
	}
	backoff := 100 * time.Millisecond
	for i := 0; i < 30; i++ {
		select {
		case <-s.shutdownCh:
			return
		default:
		}
		if err := s.fenceOnce(addr, epoch, self); err == nil {
			return
		}
		select {
		case <-time.After(backoff):
		case <-s.shutdownCh:
			return
		}
		if backoff *= 2; backoff > 2*time.Second {
			backoff = 2 * time.Second
		}
	}
}

// fenceOnce is one fence-notification attempt; only transport failures
// are errors (and retried by sendFence).
func (s *Server) fenceOnce(addr string, epoch uint64, self string) error {
	conn, err := net.DialTimeout("tcp", addr, 3*time.Second)
	if err != nil {
		return err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(3 * time.Second))
	if err := wire.WriteFrame(conn, s.cfg.maxFrame(), wire.OpPromote, wire.FenceFields(epoch, self)...); err != nil {
		return err
	}
	_, _, err = wire.ReadFrame(bufio.NewReader(conn), s.cfg.maxFrame())
	return err
}

// handleHealth is the HEALTH opcode: the degraded-mode self-report. It
// touches no locks a wedged writer could hold — every field is an atomic
// or a derived gauge — so health stays answerable while a commit is stuck
// on a dying disk. All five fields come from one registry Snapshot, so
// the report is internally consistent: in-flight, session and root counts
// were captured at the same instant and cannot tear against each other
// the way per-field atomic loads could.
func (s *Server) handleHealth() (byte, [][]byte) {
	snap := s.m.reg.Snapshot()
	inflight, _ := snap.Gauge("dbpl_server_inflight")
	sessions, _ := snap.Gauge("dbpl_server_sessions")
	roots, _ := snap.Gauge("dbpl_server_roots")
	uptimeNS, _ := snap.Gauge("dbpl_server_uptime_ns")
	degraded, _ := snap.Gauge("dbpl_server_degraded")
	durableEnd, _ := snap.Gauge("dbpl_store_durable_end")
	ackedEnd, _ := snap.Gauge("dbpl_server_acked_end")
	readOnly, _ := snap.Gauge("dbpl_server_readonly")
	role, _ := snap.Gauge("dbpl_repl_role")
	epoch, _ := snap.Gauge("dbpl_server_epoch")
	return wire.OpOK, wire.HealthFields(wire.Health{
		Poisoned:   degraded != 0,
		ReadOnly:   readOnly != 0,
		InFlight:   int(inflight),
		Sessions:   int(sessions),
		Roots:      int(roots),
		Uptime:     time.Duration(uptimeNS),
		DurableEnd: durableEnd,
		AckedEnd:   ackedEnd,
		Role:       wire.Role(role),
		Epoch:      uint64(epoch),
	})
}

// handleStats is the STATS opcode: the full registry snapshot — server,
// persistence and any co-registered layer — as one binary-encoded field.
// Like HEALTH it takes no handler locks, bypasses admission control, and
// answers during a drain, so the observer keeps observing exactly when
// the server is at its most interesting.
func (s *Server) handleStats(fields [][]byte) (byte, [][]byte) {
	if len(fields) != 0 {
		return badReq("STATS wants 0 fields, got %d", len(fields))
	}
	snap := s.m.reg.Snapshot()
	return wire.OpOK, [][]byte{snap.AppendBinary(nil)}
}

// handleTraces answers TRACES: one binary-encoded trace per response
// field, newest first. A server running with sampling off (or with no
// ring) answers OpOK with zero fields rather than an error — polling
// for traces is not a fault.
func (s *Server) handleTraces(fields [][]byte) (byte, [][]byte) {
	if len(fields) != 0 {
		return badReq("TRACES wants 0 fields, got %d", len(fields))
	}
	if s.traces == nil {
		return wire.OpOK, nil
	}
	ds := s.traces.Snapshot()
	out := make([][]byte, len(ds))
	for i := range ds {
		out[i] = ds[i].AppendBinary(nil)
	}
	return wire.OpOK, out
}

// Stats reports the server's current committed view, for tests and the
// serve verb's startup banner.
type Stats struct {
	Roots int
}

// Stats returns current statistics.
func (s *Server) Stats() Stats {
	return Stats{Roots: len(s.state.Load().roots)}
}
