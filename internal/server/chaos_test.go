package server_test

import (
	"errors"
	"fmt"
	iofs "io/fs"
	"net"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"dbpl/client"
	"dbpl/internal/persist/intrinsic"
	"dbpl/internal/persist/iofault"
	"dbpl/internal/server"
	"dbpl/internal/server/netfault"
	"dbpl/internal/value"
)

// bootCfg is boot with a non-default server.Config and an optional
// pre-opened store (for fault-injected disks); st == nil opens path.
func bootCfg(t *testing.T, path string, st *intrinsic.Store, cfg server.Config) *harness {
	t.Helper()
	if st == nil {
		var err error
		st, err = intrinsic.Open(path)
		if err != nil {
			t.Fatal(err)
		}
	}
	srv, err := server.New(st, cfg)
	if err != nil {
		st.Close()
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		st.Close()
		t.Fatal(err)
	}
	h := &harness{t: t, path: path, store: st, srv: srv, addr: ln.Addr().String(), done: make(chan error, 1)}
	go func() { h.done <- srv.Serve(ln) }()
	t.Cleanup(h.stop)
	return h
}

// proxied puts a netfault proxy in front of h and dials a client through
// it with the given options.
func proxied(t *testing.T, h *harness, opts *client.Options) (*netfault.Proxy, *client.Client) {
	t.Helper()
	p, err := netfault.New(h.addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	c, err := client.Dial(p.Addr(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return p, c
}

// noRetry disables the client's retry policy so tests can observe raw
// fault surfaces.
func noRetry() *client.Options {
	return &client.Options{
		RetryPolicy:    client.RetryPolicy{MaxAttempts: -1},
		RequestTimeout: 2 * time.Second,
	}
}

// TestChaosResetsAroundAckedPuts fires connection resets in both
// directions around a stream of retried PUTs, then reopens the log and
// checks the acknowledgement contract: every acknowledged write is on
// disk with its exact value. Resets on the request path make the retry
// re-send an unapplied write; resets on the response path make it
// re-send an *applied* one, which the idempotency dedup must absorb.
func TestChaosResetsAroundAckedPuts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "chaos-resets.log")
	h := bootCfg(t, path, nil, server.Config{})
	p, c := proxied(t, h, &client.Options{
		RetryPolicy: client.RetryPolicy{MaxAttempts: 8, Budget: -1},
	})

	const n = 40
	acked := make(map[string]int64)
	for i := 0; i < n; i++ {
		switch i % 5 {
		case 1:
			p.ResetAfter(netfault.ClientToServer, 0) // kill the request
		case 3:
			p.ResetAfter(netfault.ServerToClient, 0) // kill the ack
		}
		name := fmt.Sprintf("k%03d", i)
		if err := c.Put(name, value.Int(int64(i)), nil); err == nil {
			acked[name] = int64(i)
		}
	}
	if len(acked) < n/2 {
		t.Fatalf("only %d/%d puts acknowledged; the retry policy should have absorbed the one-shot resets", len(acked), n)
	}

	p.Close()
	h.stop()

	fresh, err := intrinsic.Open(path)
	if err != nil {
		t.Fatalf("reopen after chaos: %v", err)
	}
	defer fresh.Close()
	for name, want := range acked {
		r, ok := fresh.Root(name)
		if !ok {
			t.Errorf("acknowledged root %q lost", name)
			continue
		}
		if !value.Equal(r.Value, value.Int(want)) {
			t.Errorf("root %q = %v, want %d", name, r.Value, want)
		}
	}
}

// TestChaosRetriedDeleteAppliesExactlyOnce is the observable face of the
// dedup: DELETE's existed bit distinguishes first application (true)
// from a blind re-application (false). The ack of the first DELETE is
// reset in flight; without server-side dedup the retry would re-execute
// against the already-deleted root and report existed=false.
func TestChaosRetriedDeleteAppliesExactlyOnce(t *testing.T) {
	h := bootCfg(t, filepath.Join(t.TempDir(), "chaos-dedup.log"), nil, server.Config{})
	p, c := proxied(t, h, nil)

	if err := c.Put("victim", value.Int(7), nil); err != nil {
		t.Fatal(err)
	}
	p.ResetAfter(netfault.ServerToClient, 0)
	existed, err := c.Delete("victim")
	if err != nil {
		t.Fatalf("retried Delete: %v", err)
	}
	if !existed {
		t.Fatal("retried Delete reported existed=false: the retry re-executed instead of hitting the applied-write dedup")
	}
	names, err := c.Names()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		if name == "victim" {
			t.Fatal("victim still bound after acknowledged delete")
		}
	}
}

// blockFS wraps an FS so a test can hold one Sync open: arm() makes the
// next Sync park on a channel (signaling entry), release() lets it
// finish. It turns "a commit is in flight" into a deterministic state
// the overload test can hold the server in.
type blockFS struct {
	iofault.FS
	mu      sync.Mutex
	hold    chan struct{}
	entered chan struct{}
}

func (b *blockFS) arm() (entered, hold chan struct{}) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.entered = make(chan struct{})
	b.hold = make(chan struct{})
	return b.entered, b.hold
}

func (b *blockFS) OpenFile(name string, flag int, perm iofs.FileMode) (iofault.File, error) {
	f, err := b.FS.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &blockFile{File: f, b: b}, nil
}

type blockFile struct {
	iofault.File
	b *blockFS
}

func (f *blockFile) Sync() error {
	f.b.mu.Lock()
	entered, hold := f.b.entered, f.b.hold
	f.b.entered, f.b.hold = nil, nil
	f.b.mu.Unlock()
	if hold != nil {
		close(entered)
		<-hold
	}
	return f.File.Sync()
}

// TestChaosOverloadStormShedsTyped wedges a cap-1 server's single
// admission slot on a held commit fsync, floods it with concurrent
// writers, and asserts load shedding stays typed and bounded: every
// refusal is CodeOverloaded with a retry-after hint, HEALTH keeps
// answering mid-storm, goroutines do not grow with the request count,
// and the server is fully responsive once the slot frees.
func TestChaosOverloadStormShedsTyped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "chaos-storm.log")
	bfs := &blockFS{FS: iofault.OS{}}
	st, err := intrinsic.OpenFS(bfs, path)
	if err != nil {
		t.Fatal(err)
	}
	h := bootCfg(t, path, st, server.Config{MaxInFlight: 1})

	const clients = 12
	cs := make([]*client.Client, clients)
	for i := range cs {
		cs[i] = dial(t, h, noRetry())
	}
	health := dial(t, h, nil)
	blocker := dial(t, h, noRetry())

	// Occupy the only admission slot: this Put parks inside its commit's
	// fsync until released.
	entered, hold := bfs.arm()
	blockerErr := make(chan error, 1)
	go func() { blockerErr <- blocker.Put("blocker", value.Int(0), nil) }()
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("blocker Put never reached its commit fsync")
	}

	before := runtime.NumGoroutine()
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		sheds   int
		badErrs []error
	)
	for i, c := range cs {
		wg.Add(1)
		go func(i int, c *client.Client) {
			defer wg.Done()
			for j := 0; j < 5; j++ {
				err := c.Put(fmt.Sprintf("s%d-%d", i, j), value.Int(int64(j)), nil)
				mu.Lock()
				switch {
				case errors.Is(err, client.ErrOverloaded):
					sheds++
				case err != nil:
					badErrs = append(badErrs, err)
				default:
					// Admitted despite the held slot: the cap leaked.
					badErrs = append(badErrs, fmt.Errorf("s%d-%d was admitted past the cap", i, j))
				}
				mu.Unlock()
			}
		}(i, c)
	}

	// HEALTH and STATS are exempt from admission: both must answer
	// during the storm — the observer keeps observing mid-overload.
	hrep, herr := health.Health()
	midSnap, midErr := health.Stats()
	wg.Wait()

	if herr != nil {
		t.Errorf("Health during storm: %v", herr)
	} else {
		if hrep.Poisoned {
			t.Errorf("Health reported poisoned during a mere overload")
		}
		if hrep.InFlight != 1 {
			t.Errorf("Health.InFlight = %d during the held commit, want 1", hrep.InFlight)
		}
	}
	if midErr != nil {
		t.Errorf("Stats during storm: %v", midErr)
	} else if got, _ := midSnap.Gauge("dbpl_server_inflight"); got < 1 {
		t.Errorf("mid-storm inflight gauge = %d, want >= 1 (the held commit)", got)
	}
	for _, err := range badErrs {
		t.Errorf("storm produced an untyped failure: %v", err)
	}
	if want := clients * 5; sheds != want {
		t.Errorf("sheds = %d, want all %d storm writes refused", sheds, want)
	}

	// The storm is fully accounted for in the registry: every refusal in
	// the shed counter AND under its error code.
	snap, err := health.Stats()
	if err != nil {
		t.Fatalf("Stats after storm: %v", err)
	}
	if got, _ := snap.Counter("dbpl_server_shed_total"); got != uint64(sheds) {
		t.Errorf("shed_total = %d, want %d", got, sheds)
	}
	if got, _ := snap.Counter(`dbpl_server_errors_total{code="overloaded"}`); got != uint64(sheds) {
		t.Errorf(`errors_total{code="overloaded"} = %d, want %d`, got, sheds)
	}

	// Goroutines must be bounded by the connection count, not the request
	// count: the cap sheds instead of queueing.
	if g := runtime.NumGoroutine(); g > before+4*clients {
		t.Errorf("goroutines grew from %d to %d during the storm", before, g)
	}

	// Release the slot: the blocker's write completes and the server is
	// undamaged.
	close(hold)
	select {
	case err := <-blockerErr:
		if err != nil {
			t.Errorf("blocker Put: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocker Put never returned after release")
	}
	if err := health.Put("after", value.Int(1), nil); err != nil {
		t.Errorf("Put after storm: %v", err)
	}
}

// TestChaosPoisonedDegradedHealth poisons the write path through the
// fault-injecting disk (failed commit + failed rollback) and asserts the
// degraded read-only contract: HEALTH reports poisoned, reads keep
// working, and writes refuse with the typed ErrDegraded.
func TestChaosPoisonedDegradedHealth(t *testing.T) {
	path := filepath.Join(t.TempDir(), "chaos-poison.log")
	inj := iofault.NewInjector(iofault.OS{})
	st, err := intrinsic.OpenFS(inj, path)
	if err != nil {
		t.Fatal(err)
	}
	h := bootCfg(t, path, st, server.Config{})
	h.allowPoisoned = true
	c := dial(t, h, nil)

	if err := c.Put("A", value.Int(1), nil); err != nil {
		t.Fatal(err)
	}
	if rep, err := c.Health(); err != nil || rep.Poisoned {
		t.Fatalf("Health before poison = %+v, %v", rep, err)
	}

	// Fail the next commit's append and the rollback replay behind it.
	inj.FailAt(iofault.OpWrite, inj.Count(iofault.OpWrite)+1)
	inj.FailAt(iofault.OpRead, inj.Count(iofault.OpRead)+1)
	if err := c.Put("B", value.Int(2), nil); err == nil {
		t.Fatal("Put over failing disk succeeded")
	}

	rep, err := c.Health()
	if err != nil {
		t.Fatalf("Health on poisoned server: %v", err)
	}
	if !rep.Poisoned {
		t.Error("Health.Poisoned = false after failed rollback")
	}
	if rep.Roots != 1 {
		t.Errorf("Health.Roots = %d, want 1", rep.Roots)
	}
	if rep.Uptime <= 0 {
		t.Errorf("Health.Uptime = %v, want > 0", rep.Uptime)
	}

	// Reads still serve the committed view.
	ps, err := c.GetExpr("Int")
	if err != nil {
		t.Fatalf("Get on poisoned server: %v", err)
	}
	if len(ps) != 1 {
		t.Errorf("Get returned %d roots, want 1", len(ps))
	}

	// Writes refuse with the typed degraded error, dispatchable by
	// errors.Is and still naming the poisoning for humans.
	err = c.Put("C", value.Int(3), nil)
	if !errors.Is(err, client.ErrDegraded) {
		t.Errorf("Put on poisoned server = %v, want errors.Is ErrDegraded", err)
	}
	if err == nil || !strings.Contains(err.Error(), "poisoned") {
		t.Errorf("degraded refusal %v does not name the poisoning", err)
	}
}

// TestChaosPartitionHealTaxonomy cuts the network mid-session and checks
// the failure is a bounded, typed error — then that the pool recovers
// transparently once the partition heals.
func TestChaosPartitionHealTaxonomy(t *testing.T) {
	h := bootCfg(t, filepath.Join(t.TempDir(), "chaos-part.log"), nil, server.Config{})
	p, c := proxied(t, h, noRetry())

	if err := c.Put("pre", value.Int(1), nil); err != nil {
		t.Fatal(err)
	}

	p.Partition()
	start := time.Now()
	_, err := c.Names()
	if err == nil {
		t.Fatal("Names across a partition succeeded")
	}
	var ne net.Error
	if !errors.Is(err, client.ErrConnLost) && !errors.Is(err, client.ErrDeadline) && !errors.As(err, &ne) {
		t.Errorf("partition surfaced as %v, want conn-lost / deadline / net error", err)
	}
	if el := time.Since(start); el > 10*time.Second {
		t.Errorf("partitioned call took %v, want bounded by the request timeout", el)
	}

	p.Heal()
	// The pool redials on next use; give the no-retry client a few tries.
	var names []string
	for i := 0; i < 5; i++ {
		if names, err = c.Names(); err == nil {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("Names after heal: %v", err)
	}
	if len(names) != 1 || names[0] != "pre" {
		t.Errorf("Names after heal = %v, want [pre]", names)
	}
}

// TestChaosFlipByteNeverPanics corrupts the first byte of a response
// frame and asserts the client fails the connection with an error — not
// a panic, not a hang — and recovers on the next call.
func TestChaosFlipByteNeverPanics(t *testing.T) {
	h := bootCfg(t, filepath.Join(t.TempDir(), "chaos-flip.log"), nil, server.Config{})
	p, c := proxied(t, h, noRetry())

	if err := c.Put("x", value.Int(1), nil); err != nil {
		t.Fatal(err)
	}
	p.FlipByte(netfault.ServerToClient, 0)
	if _, err := c.Names(); err == nil {
		t.Fatal("Names over a corrupted frame succeeded")
	}
	// One-shot corruption: the pool redials and the next call is clean.
	var names []string
	var err error
	for i := 0; i < 5; i++ {
		if names, err = c.Names(); err == nil {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("Names after corruption: %v", err)
	}
	if len(names) != 1 || names[0] != "x" {
		t.Errorf("Names after corruption = %v, want [x]", names)
	}
}
