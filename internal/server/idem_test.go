package server

import "fmt"

import "testing"

func TestIdemCacheBoundedLRU(t *testing.T) {
	c := newIdemCache(3)
	for i := 0; i < 5; i++ {
		c.put(fmt.Sprintf("k%d", i), []bool{i%2 == 0})
	}
	if c.len() != 3 {
		t.Fatalf("len = %d, want the capacity 3", c.len())
	}
	// The two oldest were evicted.
	for _, k := range []string{"k0", "k1"} {
		if _, ok := c.get(k); ok {
			t.Errorf("evicted key %q still present", k)
		}
	}
	for i := 2; i < 5; i++ {
		got, ok := c.get(fmt.Sprintf("k%d", i))
		if !ok {
			t.Errorf("key k%d missing", i)
			continue
		}
		if len(got) != 1 || got[0] != (i%2 == 0) {
			t.Errorf("k%d = %v, want [%v]", i, got, i%2 == 0)
		}
	}
}

func TestIdemCacheGetPromotes(t *testing.T) {
	c := newIdemCache(2)
	c.put("a", nil)
	c.put("b", nil)
	c.get("a") // promote a over b
	c.put("c", nil)
	if _, ok := c.get("b"); ok {
		t.Error("b survived eviction despite a's promotion")
	}
	if _, ok := c.get("a"); !ok {
		t.Error("promoted a was evicted")
	}
}

func TestIdemCacheNilSafe(t *testing.T) {
	var c *idemCache // dedup disabled
	if _, ok := c.get("k"); ok {
		t.Error("nil cache reported a hit")
	}
	c.put("k", nil) // must not panic
	if c.len() != 0 {
		t.Error("nil cache has nonzero len")
	}
}

func TestIdemCachePutSameKeyUpdates(t *testing.T) {
	c := newIdemCache(2)
	c.put("k", []bool{false})
	c.put("k", []bool{true})
	if c.len() != 1 {
		t.Fatalf("len = %d after re-put, want 1", c.len())
	}
	got, ok := c.get("k")
	if !ok || len(got) != 1 || !got[0] {
		t.Errorf("get = %v, %v; want [true]", got, ok)
	}
}
