package server_test

import (
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"dbpl/client"
	"dbpl/internal/persist/intrinsic"
	"dbpl/internal/server"
	"dbpl/internal/server/wire"
	"dbpl/internal/types"
	"dbpl/internal/value"
)

// harness boots a server over a store at path on a throwaway port and
// tears it down with the graceful path.
type harness struct {
	t     *testing.T
	path  string
	store *intrinsic.Store
	srv   *server.Server
	addr  string
	done  chan error
	once  sync.Once
	// allowPoisoned lets stop tolerate the poisoned-write-path refusal of
	// Shutdown's final commit (tests that poison the server on purpose).
	allowPoisoned bool
}

func boot(t *testing.T, path string) *harness {
	return bootCfg(t, path, nil, server.Config{})
}

// stop drains the server and closes the store; idempotent (tests that
// stop explicitly also have it registered as a cleanup).
func (h *harness) stop() {
	h.t.Helper()
	h.once.Do(h.stopOnce)
}

func (h *harness) stopOnce() {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := h.srv.Shutdown(ctx); err != nil && !errors.Is(err, intrinsic.ErrClosed) {
		if !(h.allowPoisoned && strings.Contains(err.Error(), "poisoned")) {
			h.t.Errorf("Shutdown: %v", err)
		}
	}
	select {
	case err := <-h.done:
		if err != nil && !errors.Is(err, server.ErrServerClosed) {
			h.t.Errorf("Serve: %v", err)
		}
	case <-time.After(5 * time.Second):
		h.t.Error("Serve did not return after Shutdown")
	}
	h.store.Close()
}

func dial(t *testing.T, h *harness, opts *client.Options) *client.Client {
	t.Helper()
	c, err := client.Dial(h.addr, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

var (
	personT   = types.MustParse("{Name: String}")
	employeeT = types.MustParse("{Name: String, Empno: Int, Dept: String}")
	deptT     = types.MustParse("{Dept: String, Floor: Int}")
)

func emp(name string, no int64, dept string) value.Value {
	return value.Rec("Name", value.String(name), "Empno", value.Int(no), "Dept", value.String(dept))
}

func namesOf(ps []client.Packed) []string {
	var out []string
	for _, p := range ps {
		if r, ok := p.Value.(*value.Record); ok {
			if n, ok := r.Get("Name"); ok {
				out = append(out, string(n.(value.String)))
			}
		}
	}
	sort.Strings(out)
	return out
}

// TestE2ERoundTrips drives the full verb set through the client package:
// PUT/GET with subtype-driven extraction, DELETE, NAMES, JOIN, and the
// error taxonomy for the common misuses.
func TestE2ERoundTrips(t *testing.T) {
	h := boot(t, filepath.Join(t.TempDir(), "e2e.log"))
	c := dial(t, h, nil)

	if err := c.Put("p1", value.Rec("Name", value.String("P1")), personT); err != nil {
		t.Fatal(err)
	}
	if err := c.Put("e1", emp("E1", 1, "Sales"), employeeT); err != nil {
		t.Fatal(err)
	}
	if err := c.Put("e2", emp("E2", 2, "Manuf"), employeeT); err != nil {
		t.Fatal(err)
	}
	if err := c.Put("d1", value.Rec("Dept", value.String("Sales"), "Floor", value.Int(3)), deptT); err != nil {
		t.Fatal(err)
	}

	// The paper's containment: Get[Employee] ⊆ Get[Person].
	emps, err := c.Get(employeeT)
	if err != nil {
		t.Fatal(err)
	}
	if got := namesOf(emps); !reflect.DeepEqual(got, []string{"E1", "E2"}) {
		t.Errorf("Get[Employee] = %v", got)
	}
	people, err := c.Get(personT)
	if err != nil {
		t.Fatal(err)
	}
	if got := namesOf(people); !reflect.DeepEqual(got, []string{"E1", "E2", "P1"}) {
		t.Errorf("Get[Person] = %v", got)
	}
	// Witnesses are the declared types.
	for _, p := range emps {
		if !types.Equal(p.Witness, employeeT) {
			t.Errorf("witness = %s, want %s", p.Witness, employeeT)
		}
	}

	// GetExpr parses the concrete syntax client-side.
	byExpr, err := c.GetExpr("{Name: String, Empno: Int, Dept: String}")
	if err != nil {
		t.Fatal(err)
	}
	if len(byExpr) != len(emps) {
		t.Errorf("GetExpr = %d results, want %d", len(byExpr), len(emps))
	}

	// JOIN of the employee and department extents (Figure 1 remotely).
	joined, err := c.Join(employeeT, deptT)
	if err != nil {
		t.Fatal(err)
	}
	foundJoined := false
	for _, m := range joined {
		r, ok := m.(*value.Record)
		if !ok {
			continue
		}
		if n, _ := r.Get("Name"); n != nil && value.Equal(n, value.String("E1")) {
			if f, _ := r.Get("Floor"); f != nil && value.Equal(f, value.Int(3)) {
				foundJoined = true
			}
		}
	}
	if !foundJoined {
		t.Errorf("JOIN missing {Name=E1, ..., Floor=3}; got %v", joined)
	}

	names, err := c.Names()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(names, []string{"d1", "e1", "e2", "p1"}) {
		t.Errorf("Names = %v", names)
	}

	existed, err := c.Delete("p1")
	if err != nil || !existed {
		t.Fatalf("Delete(p1) = %v, %v", existed, err)
	}
	existed, err = c.Delete("p1")
	if err != nil || existed {
		t.Fatalf("second Delete(p1) = %v, %v", existed, err)
	}

	// Taxonomy: misuse maps to typed wire errors.
	if err := c.Put("bad", value.Int(1), types.String); !errors.Is(err, wire.ErrNotConforming) {
		t.Errorf("non-conforming PUT: %v", err)
	}
	s, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(); !errors.Is(err, client.ErrDone) {
		t.Errorf("double commit: %v", err)
	}
}

// TestE2ETransactions checks session isolation end to end: buffered
// writes are visible to the session (read-your-writes), invisible to
// other clients until COMMIT, and discarded by ABORT.
func TestE2ETransactions(t *testing.T) {
	h := boot(t, filepath.Join(t.TempDir(), "txn.log"))
	c := dial(t, h, nil)

	if err := c.Put("e1", emp("E1", 1, "Sales"), employeeT); err != nil {
		t.Fatal(err)
	}

	s, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("e2", emp("E2", 2, "Manuf"), employeeT); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Delete("e1"); err != nil {
		t.Fatal(err)
	}

	// The session sees its overlay...
	inTxn, err := s.Get(employeeT)
	if err != nil {
		t.Fatal(err)
	}
	if got := namesOf(inTxn); !reflect.DeepEqual(got, []string{"E2"}) {
		t.Errorf("session view = %v, want [E2]", got)
	}
	sessionNames, err := s.Names()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sessionNames, []string{"e2"}) {
		t.Errorf("session names = %v", sessionNames)
	}
	// ...while outside observers still see the committed state.
	outside, err := c.Get(employeeT)
	if err != nil {
		t.Fatal(err)
	}
	if got := namesOf(outside); !reflect.DeepEqual(got, []string{"E1"}) {
		t.Errorf("outside view during txn = %v, want [E1]", got)
	}

	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	after, err := c.Get(employeeT)
	if err != nil {
		t.Fatal(err)
	}
	if got := namesOf(after); !reflect.DeepEqual(got, []string{"E2"}) {
		t.Errorf("after commit = %v, want [E2]", got)
	}

	// ABORT discards.
	s2, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Put("e3", emp("E3", 3, "Sales"), employeeT); err != nil {
		t.Fatal(err)
	}
	if err := s2.Abort(); err != nil {
		t.Fatal(err)
	}
	final, err := c.Get(employeeT)
	if err != nil {
		t.Fatal(err)
	}
	if got := namesOf(final); !reflect.DeepEqual(got, []string{"E2"}) {
		t.Errorf("after abort = %v, want [E2]", got)
	}
}

// TestE2EReconnectAfterRestart mirrors the crash-matrix style of the
// persistence tests at the system level: commit through one server
// incarnation, shut it down, boot a second on the same log, and the
// client — redialing dead pool connections transparently — sees exactly
// the committed state. Uncommitted transactional writes die with the
// server.
func TestE2EReconnectAfterRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "restart.log")
	h1 := boot(t, path)
	c := dial(t, h1, &client.Options{PoolSize: 1, RequestTimeout: 5 * time.Second})

	if err := c.Put("e1", emp("E1", 1, "Sales"), employeeT); err != nil {
		t.Fatal(err)
	}
	// A transaction left open across the restart must not survive.
	s, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("ghost", emp("G", 9, "Ghost"), employeeT); err != nil {
		t.Fatal(err)
	}

	h1.stop()

	// Second incarnation on the same log, new port.
	h2 := boot(t, path)
	c2 := dial(t, h2, nil)
	got, err := c2.Get(employeeT)
	if err != nil {
		t.Fatal(err)
	}
	if names := namesOf(got); !reflect.DeepEqual(names, []string{"E1"}) {
		t.Errorf("recovered state = %v, want [E1]", names)
	}

	// The old client's pooled conn is dead; against the old address every
	// request now fails with a dial or transport error, not a hang.
	if _, err := c.Get(employeeT); err == nil {
		t.Error("Get against a stopped server succeeded")
	}
}

// TestE2EShutdownRefusesNewWork: after Shutdown begins, new connections
// are refused while the drain completes, and the final commit group makes
// the log reopenable at exactly the committed state.
func TestE2EShutdownRefusesNewWork(t *testing.T) {
	path := filepath.Join(t.TempDir(), "drain.log")
	h := boot(t, path)
	c := dial(t, h, nil)
	if err := c.Put("e1", emp("E1", 1, "Sales"), employeeT); err != nil {
		t.Fatal(err)
	}
	h.stop()

	if _, err := client.Dial(h.addr, &client.Options{DialTimeout: 500 * time.Millisecond}); err == nil {
		t.Error("Dial succeeded after shutdown")
	}

	st, err := intrinsic.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	r, ok := st.Root("e1")
	if !ok {
		t.Fatal("root e1 missing after shutdown")
	}
	if n, _ := r.Value.(*value.Record).Get("Name"); !value.Equal(n, value.String("E1")) {
		t.Errorf("recovered e1 = %s", r.Value)
	}
}

// TestE2EPipelining exercises the client's FIFO pipelining: many
// concurrent requests multiplexed over a single pooled connection all
// complete and match their own responses.
func TestE2EPipelining(t *testing.T) {
	h := boot(t, filepath.Join(t.TempDir(), "pipe.log"))
	c := dial(t, h, &client.Options{PoolSize: 1})
	for i := int64(0); i < 8; i++ {
		if err := c.Put("e"+string(rune('0'+i)), emp("E", i, "D"), employeeT); err != nil {
			t.Fatal(err)
		}
	}
	const callers = 16
	errs := make(chan error, callers)
	for i := 0; i < callers; i++ {
		go func() {
			ps, err := c.Get(employeeT)
			if err == nil && len(ps) != 8 {
				err = errors.New("wrong result size")
			}
			errs <- err
		}()
	}
	for i := 0; i < callers; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}
