// Group commit: the commit coalescer that amortizes the fsync across
// concurrent writers.
//
// Under Durability=per-commit every writer serializes through commitMu
// and pays a full fsync alone, so aggregate write throughput flatlines at
// 1/fsync-latency no matter how many clients push. The coalescer turns
// that queue into a batch: writers hand their commit to a dedicated
// committer goroutine, which drains everything queued, stages each commit
// as its own group in the store's log (StageCommit — write, no sync), and
// promotes the whole batch with ONE shared fsync (SyncBatch). Every
// waiter is acknowledged only after that shared durable boundary, so the
// guarantee each writer observes is exactly per-commit durability — the
// fsync is merely shared. While the fsync for batch N runs, the queue for
// batch N+1 builds, which is what makes throughput scale with concurrency
// instead of flatlining (experiment E18).
//
// Failure discipline (the PR 2/4 machinery, moved to the batch): a failed
// stage or batch fsync has already truncated the log back to the
// pre-batch durable end inside the store, so the coalescer fails every
// waiter in the batch with the same typed cause and replays the log
// (rollback) to re-derive the in-memory store state; if even that fails
// the write path is poisoned. Results are decided solely by the
// stage/sync outcome under commitMu — never by observing the poisoned
// flag afterwards — so degraded-mode entry between stage and ack can
// never acknowledge a writer whose group was truncated back (the
// double-ack hazard).
//
// Idempotency keys are recorded only after the batch is durable; a
// duplicate key *within* one batch stages once and both waiters share the
// recorded result — exactly-once across batch boundaries.
//
// Durability=async is the honest fast-and-loose mode: waiters are
// acknowledged after their group is staged and the successor state is
// published, and the shared fsync happens right after, still on the
// committer goroutine. The acknowledged-but-not-yet-durable window is
// published as the acked-end watermark next to the durable end (HEALTH,
// STATS). If the async fsync fails, acknowledged writes were lost: the
// write path poisons unconditionally, because the published state can no
// longer be made durable.
package server

import (
	"fmt"
	"time"

	"dbpl/internal/server/wire"
	rtrace "dbpl/internal/telemetry/trace"
)

// Durability selects when a write is acknowledged relative to its fsync.
type Durability int

const (
	// DurPerCommit: every commit group pays its own fsync before the ack —
	// the PR 1 behavior, and the default.
	DurPerCommit Durability = iota
	// DurGroup: concurrent commits are staged into one batch and promoted
	// by one shared fsync; every waiter acks after that shared durable
	// boundary. Same guarantee as per-commit, amortized cost.
	DurGroup
	// DurAsync: commits are acknowledged after staging (write, no sync);
	// the shared fsync follows immediately but the ack does not wait for
	// it. A crash may lose acknowledged writes up to the published
	// acked-end watermark. See docs/PERSISTENCE.md.
	DurAsync
)

func (d Durability) String() string {
	switch d {
	case DurGroup:
		return "group"
	case DurAsync:
		return "async"
	default:
		return "per-commit"
	}
}

// ParseDurability maps the serve flag spelling to a Durability.
func ParseDurability(s string) (Durability, error) {
	switch s {
	case "", "per-commit":
		return DurPerCommit, nil
	case "group":
		return DurGroup, nil
	case "async":
		return DurAsync, nil
	}
	return DurPerCommit, fmt.Errorf("unknown durability %q (want per-commit, group or async)", s)
}

// commitReq is one writer's commit handed to the committer goroutine.
// tr/sp carry the writer's trace across the goroutine boundary: the
// committer appends queue-wait/stage/fsync/publish child spans under
// sp (the writer's "commit" span) while the writer blocks on done, so
// the finished tree shows exactly where a group-committed write spent
// its time. Both are nil/zero for unsampled requests.
type commitReq struct {
	ops      []txnOp
	key      string
	enqueued time.Time
	tr       *rtrace.Trace
	sp       rtrace.SpanID
	done     chan commitResult // buffered(1); exactly one send
}

type commitResult struct {
	existed []bool
	err     error
}

// committerLoop is the dedicated committer goroutine: it blocks for the
// next queued commit, drains whatever else is already queued (up to
// GroupMaxBatch, lingering up to GroupMaxDelay for stragglers), and
// processes the batch under commitMu. It exits when commitCh closes
// (Shutdown, after every request handler has returned), having processed
// everything that was queued.
func (s *Server) committerLoop() {
	defer close(s.committerDone)
	maxBatch := s.cfg.groupMaxBatch()
	maxDelay := s.cfg.groupMaxDelay()
	for req := range s.commitCh {
		s.processBatch(s.collectBatch(req, maxBatch, maxDelay))
	}
}

// collectBatch gathers the current batch: first, then everything already
// queued, then — only when GroupMaxDelay is set — stragglers until the
// delay expires or the batch is full. With no delay configured the batch
// is simply "the queue at this instant", the classic self-tuning shape:
// batches grow exactly as fast as the fsync is slow.
func (s *Server) collectBatch(first *commitReq, maxBatch int, maxDelay time.Duration) []*commitReq {
	batch := append(make([]*commitReq, 0, maxBatch), first)
	var linger <-chan time.Time
	if maxDelay > 0 {
		t := time.NewTimer(maxDelay)
		defer t.Stop()
		linger = t.C
	}
	for len(batch) < maxBatch {
		select {
		case r, ok := <-s.commitCh:
			if !ok {
				return batch
			}
			batch = append(batch, r)
			continue
		default:
		}
		if linger == nil {
			return batch
		}
		select {
		case r, ok := <-s.commitCh:
			if !ok {
				return batch
			}
			batch = append(batch, r)
		case <-linger:
			return batch
		}
	}
	return batch
}

// processBatch stages every commit in the batch as its own group, shares
// one fsync across them, and answers every waiter. It owns the whole
// writer critical section (commitMu), so it is the only code that can
// interleave with alterIndex, Shutdown's final commit and the poison
// flag.
func (s *Server) processBatch(batch []*commitReq) {
	began := time.Now()
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	for _, r := range batch {
		s.m.commitQueueWait.ObserveDuration(began.Sub(r.enqueued))
		r.tr.Add(r.sp, "queue-wait", r.enqueued, began)
	}

	// results accumulates the answer for every waiter; send delivers it,
	// exactly once per waiter (async acks deliver early, before the
	// fsync; the deferred sweep answers everyone else).
	results := make(map[*commitReq]commitResult, len(batch))
	sent := make(map[*commitReq]bool, len(batch))
	send := func(r *commitReq) {
		if sent[r] {
			return
		}
		sent[r] = true
		res, ok := results[r]
		if !ok {
			res = commitResult{err: &wire.WireError{Code: wire.CodeInternal, Msg: "commit batch dropped a waiter"}}
		}
		r.done <- res
	}
	defer func() {
		for _, r := range batch {
			send(r)
		}
	}()

	if s.poisoned != nil {
		err := &wire.WireError{Code: wire.CodeDegraded, Msg: s.poisoned.Error()}
		for _, r := range batch {
			s.m.degraded.Inc()
			results[r] = commitResult{err: err}
		}
		return
	}
	// The fence decision point for coalesced writes: a batch that queued
	// while this server was primary but reached the committer after a
	// fence is refused whole, under the same lock the fence was applied
	// under — a demoted primary can never ack a write after its
	// successor's promotion (the double-ack discipline, extended to
	// failover).
	if r := wire.Role(s.role.Load()); r != wire.RolePrimary {
		err := s.refuseWrite(r)
		for _, req := range batch {
			results[req] = commitResult{err: err}
		}
		return
	}

	// Stage phase: each commit becomes one staged group; the successor
	// state is computed but not yet published. Requests answered from the
	// idempotency cache (their groups are already durable from an earlier
	// batch) succeed regardless of this batch's fate; a duplicate key
	// *within* the batch aliases the first occurrence's result.
	type stagedReq struct {
		req     *commitReq
		existed []bool
	}
	var staged []stagedReq
	keyOwner := map[string]int{} // key -> index into staged
	aliases := map[*commitReq]int{}
	pub := s.state.Load()
	var indexTouched uint64
	var failAll error
	for _, r := range batch {
		if r.key != "" {
			if existed, ok := s.idem.get(r.key); ok {
				s.m.idemHits.Inc()
				results[r] = commitResult{existed: existed}
				continue
			}
			if i, ok := keyOwner[r.key]; ok {
				s.m.idemHits.Inc()
				aliases[r] = i
				continue
			}
		}
		stageStart := time.Now()
		existed := make([]bool, len(r.ops))
		for i, o := range r.ops {
			_, existed[i] = pub.roots[o.name]
			if o.del {
				s.store.Unbind(o.name)
				continue
			}
			if err := s.store.Bind(o.name, o.dyn.Value(), o.dyn.Type()); err != nil {
				failAll = err
				break
			}
		}
		if failAll == nil {
			if _, err := s.store.StageCommit(); err != nil {
				failAll = err
			}
		}
		if failAll != nil {
			break
		}
		r.tr.Add(r.sp, "stage", stageStart, time.Now())
		next, istats := pub.apply(r.ops)
		pub = next
		indexTouched += uint64(istats.EntriesTouched)
		staged = append(staged, stagedReq{req: r, existed: existed})
		if r.key != "" {
			keyOwner[r.key] = len(staged) - 1
		}
	}
	if failAll != nil {
		// The store already truncated every staged group of this batch (a
		// failed stage rolls the whole open batch back); replaying the log
		// re-derives the in-memory store state, or poisons. Every waiter
		// not answered from the dedup cache fails with the same cause.
		s.rollback(failAll)
		s.failBatch(batch, results, failAll)
		return
	}
	if len(staged) == 0 {
		return // the whole batch was answered from the dedup cache
	}

	// batchTrace is the trace that represents this batch on shared
	// instruments (the sync-latency exemplar, the REPDATA stamp): the
	// first sampled waiter's trace ID, zero when none were sampled.
	var batchTrace uint64
	for _, sr := range staged {
		if id := sr.req.tr.ID(); id != 0 {
			batchTrace = id
			break
		}
	}

	async := s.cfg.Durability == DurAsync
	ack := func() {
		pubStart := time.Now()
		s.state.Store(pub)
		s.notifyCommit()
		pubEnd := time.Now()
		for _, sr := range staged {
			if sr.req.key != "" {
				s.idem.put(sr.req.key, sr.existed)
			}
			results[sr.req] = commitResult{existed: sr.existed}
			sr.req.tr.Add(sr.req.sp, "publish", pubStart, pubEnd)
			s.m.commits.Inc()
			s.m.commitSeconds.ObserveDurationExemplar(time.Since(sr.req.enqueued), sr.req.tr.ID())
			s.m.commitOps.Observe(int64(len(sr.req.ops)))
		}
		for r, i := range aliases {
			results[r] = commitResult{existed: staged[i].existed}
		}
		s.m.indexTouched.Add(indexTouched)
		s.m.batchGroups.Observe(int64(len(staged)))
		s.m.fsyncsSaved.Add(uint64(len(staged) - 1))
	}

	if async {
		// Acked-but-not-yet-durable: publish the watermark, answer the
		// waiters before the fsync (that is the mode's entire point; the
		// window is one batch wide), and record idempotency keys at ack
		// time so a retry of an acked write cannot re-apply.
		s.ackedEnd.Store(s.store.StagedEnd())
		ack()
		for _, sr := range staged {
			send(sr.req)
		}
		for r := range aliases {
			send(r)
		}
	}

	syncStart := time.Now()
	_, err := s.store.SyncBatch()
	syncEnd := time.Now()
	s.m.commitSyncSeconds.ObserveExemplar(int64(syncEnd.Sub(syncStart)), batchTrace)
	if err != nil {
		if async {
			// The waiters were already acknowledged against state that just
			// got truncated out of the log: the published state can no
			// longer be made durable. Bring the store back to the durable
			// boundary (best effort) and poison unconditionally — restart
			// is the only exit.
			s.store.Abort()
			s.poisoned = fmt.Errorf("server: write path poisoned: async commit batch lost after acknowledgement: %w", err)
			s.degraded.Store(true)
			s.logf("%v", s.poisoned)
			return
		}
		s.rollback(err)
		s.failBatch(batch, results, err)
		return
	}
	// The shared fsync becomes a child span of every durably-acked
	// waiter: the same wall-clock interval appears in each tree, which
	// is the point — it shows N writers paying one fsync. Async waiters
	// were already acknowledged (their goroutines may have recorded the
	// trace), so only sync modes append it.
	if !async {
		for _, sr := range staged {
			sr.req.tr.Add(sr.req.sp, "fsync", syncStart, syncEnd)
		}
	}
	s.markCommit(batchTrace)
	if !async {
		ack()
	}
}

// failBatch records err for every waiter in batch that does not already
// have a result (dedup-cache hits keep their success: their groups were
// made durable by an earlier batch).
func (s *Server) failBatch(batch []*commitReq, results map[*commitReq]commitResult, err error) {
	for _, r := range batch {
		if _, ok := results[r]; !ok {
			results[r] = commitResult{err: err}
		}
	}
}

// coalescedCommit is the waiter side: enqueue and block for the result.
// The committer goroutine does the idempotency lookup, existed
// computation and staging under commitMu, so ordering is decided by queue
// position exactly as it used to be by lock handoff.
func (s *Server) coalescedCommit(ops []txnOp, key string, tr *rtrace.Trace) ([]bool, error) {
	sp := tr.Start(0, "commit")
	req := &commitReq{ops: ops, key: key, enqueued: time.Now(),
		tr: tr, sp: sp, done: make(chan commitResult, 1)}
	s.commitCh <- req
	res := <-req.done
	tr.End(sp)
	return res.existed, res.err
}
