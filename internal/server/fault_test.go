package server_test

import (
	"context"
	"errors"
	"net"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"dbpl/client"
	"dbpl/internal/persist/intrinsic"
	"dbpl/internal/persist/iofault"
	"dbpl/internal/server"
	"dbpl/internal/value"
)

// TestFailedRollbackPoisonsWritePath: when a commit fails AND the rollback
// replay fails too (the same failing disk), the store's in-memory roots no
// longer match the published committed state. The server must refuse all
// further commits — including Shutdown's final group — instead of durably
// encoding the divergent root table and dropping committed roots.
func TestFailedRollbackPoisonsWritePath(t *testing.T) {
	path := filepath.Join(t.TempDir(), "poison.log")
	inj := iofault.NewInjector(iofault.OS{})
	st, err := intrinsic.OpenFS(inj, path)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(st, server.Config{})
	if err != nil {
		st.Close()
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		st.Close()
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	c, err := client.Dial(ln.Addr().String(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Put("A", value.Int(1), nil); err != nil {
		t.Fatalf("seed Put: %v", err)
	}

	// Fail the next log append (the commit group for B) and the first read
	// of the rollback's log replay, so store.Abort fails and the server's
	// in-memory store state diverges from the published one.
	inj.FailAt(iofault.OpWrite, inj.Count(iofault.OpWrite)+1)
	inj.FailAt(iofault.OpRead, inj.Count(iofault.OpRead)+1)

	err = c.Put("B", value.Int(2), nil)
	if !errors.Is(err, client.ErrRemoteIO) || !errors.Is(err, client.ErrIOFailed) {
		t.Fatalf("Put over failing disk = %v, want the remote I/O taxonomy", err)
	}

	// The write path is now poisoned: refused up front, before the store
	// can append a root table derived from the divergent in-memory state.
	if err := c.Put("C", value.Int(3), nil); err == nil || !strings.Contains(err.Error(), "poisoned") {
		t.Fatalf("Put after failed rollback = %v, want poisoned refusal", err)
	}

	// Readers keep the committed view; a poisoned write path must not leak
	// into the published state.
	names, err := c.Names()
	if err != nil {
		t.Fatalf("Names: %v", err)
	}
	if want := []string{"A"}; !reflect.DeepEqual(names, want) {
		t.Fatalf("Names = %v, want %v", names, want)
	}

	// Shutdown must refuse the final commit group for the same reason.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err == nil || !strings.Contains(err.Error(), "poisoned") {
		t.Fatalf("Shutdown on a poisoned server = %v, want poisoned refusal", err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, server.ErrServerClosed) {
			t.Errorf("Serve: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after Shutdown")
	}
	st.Close()

	// The disk state is exactly the last durable commit: reopening (over
	// the real filesystem) recovers A and nothing else.
	fresh, err := intrinsic.Open(path)
	if err != nil {
		t.Fatalf("reopen after poisoned shutdown: %v", err)
	}
	defer fresh.Close()
	if r, ok := fresh.Root("A"); !ok || !value.Equal(r.Value, value.Int(1)) {
		t.Errorf("root A not recovered intact (ok=%v)", ok)
	}
	for _, name := range []string{"B", "C"} {
		if _, ok := fresh.Root(name); ok {
			t.Errorf("uncommitted root %q survived on disk", name)
		}
	}
}
