package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"
	"time"

	"dbpl/internal/persist/iofault"
	"dbpl/internal/types"
)

func TestFrameRoundTrip(t *testing.T) {
	cases := []struct {
		op     byte
		fields [][]byte
	}{
		{OpPing, nil},
		{OpGet, [][]byte{[]byte("one")}},
		{OpPut, [][]byte{[]byte("name"), {0x01, 0x02, 0x00}}},
		{OpValues, [][]byte{{}, []byte("x"), bytes.Repeat([]byte{7}, 300)}},
		{OpError, [][]byte{{byte(CodeNoRoot)}, []byte("no such root")}},
	}
	var buf bytes.Buffer
	for _, c := range cases {
		if err := WriteFrame(&buf, 0, c.op, c.fields...); err != nil {
			t.Fatalf("WriteFrame(%#x): %v", c.op, err)
		}
	}
	r := bytes.NewReader(buf.Bytes())
	for _, c := range cases {
		op, fields, err := ReadFrame(r, 0)
		if err != nil {
			t.Fatalf("ReadFrame: %v", err)
		}
		if op != c.op {
			t.Errorf("op = %#x, want %#x", op, c.op)
		}
		if len(fields) != len(c.fields) {
			t.Fatalf("fields = %d, want %d", len(fields), len(c.fields))
		}
		for i := range fields {
			if !bytes.Equal(fields[i], c.fields[i]) {
				t.Errorf("field %d = %v, want %v", i, fields[i], c.fields[i])
			}
		}
	}
	if _, _, err := ReadFrame(r, 0); err != io.EOF {
		t.Errorf("trailing ReadFrame err = %v, want io.EOF", err)
	}
}

func TestReadFrameRejectsMalformed(t *testing.T) {
	frame := func(payload []byte) []byte {
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
		return append(hdr[:], payload...)
	}
	cases := []struct {
		name string
		in   []byte
		want error
	}{
		{"empty payload", frame(nil), ErrBadFrame},
		{"oversize claim", func() []byte {
			var hdr [4]byte
			binary.BigEndian.PutUint32(hdr[:], 1<<30)
			return hdr[:]
		}(), ErrTooLarge},
		{"truncated payload", frame([]byte{OpPing, 5, 'a'})[:5], ErrBadFrame},
		{"field length past end", frame([]byte{OpGet, 200, 1}), ErrBadFrame},
		{"bad uvarint prefix", frame(append([]byte{OpGet}, bytes.Repeat([]byte{0xFF}, 10)...)), ErrBadFrame},
	}
	for _, c := range cases {
		_, _, err := ReadFrame(bytes.NewReader(c.in), 1<<20)
		if !errors.Is(err, c.want) {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.want)
		}
	}
	// Truncated header: a transport error, not a WireError.
	if _, _, err := ReadFrame(bytes.NewReader([]byte{0, 0}), 0); err != io.ErrUnexpectedEOF {
		t.Errorf("truncated header err = %v, want io.ErrUnexpectedEOF", err)
	}
}

func TestWriteFrameRefusesOversize(t *testing.T) {
	err := WriteFrame(io.Discard, 16, OpPut, bytes.Repeat([]byte{1}, 64))
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestTypeFieldRoundTrip(t *testing.T) {
	for _, src := range []string{
		"Int", "{Name: String, Age: Int}", "List[Set[Bool]]",
		"forall t <= {A: Int} . t -> t", "rec t . {Next: t}",
	} {
		want := types.MustParse(src)
		b, err := MarshalType(want)
		if err != nil {
			t.Fatalf("MarshalType(%s): %v", src, err)
		}
		got, err := UnmarshalType(b)
		if err != nil {
			t.Fatalf("UnmarshalType(%s): %v", src, err)
		}
		if !types.Equal(got, want) {
			t.Errorf("round trip of %s = %s", src, got)
		}
	}
}

func TestWireErrorTaxonomy(t *testing.T) {
	for code, sentinel := range map[Code]error{
		CodeBadFrame:      ErrBadFrame,
		CodeTooLarge:      ErrTooLarge,
		CodeUnknownOp:     ErrUnknownOp,
		CodeBadRequest:    ErrBadRequest,
		CodeNoRoot:        ErrNoRoot,
		CodeNotConforming: ErrNotConforming,
		CodeInconsistent:  ErrInconsistent,
		CodeTxn:           ErrTxn,
		CodeIO:            ErrRemoteIO,
		CodeCorrupt:       ErrRemoteCorrupt,
		CodeShutdown:      ErrShutdown,
		CodeInternal:      ErrInternal,
	} {
		err := DecodeError(ErrorFields(&WireError{Code: code, Msg: "detail"}))
		if !errors.Is(err, sentinel) {
			t.Errorf("%s does not unwrap to its sentinel", code)
		}
		if !strings.Contains(err.Error(), "detail") {
			t.Errorf("%s drops the message: %v", code, err)
		}
	}
	// Remote I/O failures stay in the local persistence taxonomy.
	ioErr := DecodeError(ErrorFields(&WireError{Code: CodeIO, Msg: "write /x: disk died"}))
	if !errors.Is(ioErr, iofault.ErrIOFailed) {
		t.Error("CodeIO does not unwrap to iofault.ErrIOFailed")
	}
	if errors.Is(DecodeError(ErrorFields(&WireError{Code: CodeNoRoot})), iofault.ErrIOFailed) {
		t.Error("CodeNoRoot wrongly unwraps to iofault.ErrIOFailed")
	}
	// A malformed error payload is itself diagnosed, not trusted.
	if err := DecodeError([][]byte{{1, 2, 3}}); !errors.Is(err, ErrBadFrame) {
		t.Errorf("malformed error payload: %v", err)
	}
}

// TestCodeExhaustiveness walks every assigned code and enforces the
// taxonomy's three invariants: a real String() (no code(N) fallback), a
// distinct sentinel, and a lossless encode→decode round trip. Appending
// a Code without extending String/Sentinel fails here, not in a
// production error path.
func TestCodeExhaustiveness(t *testing.T) {
	seenStr := make(map[string]Code)
	seenSent := make(map[error]Code)
	for code := CodeBadFrame; code <= lastCode; code++ {
		s := code.String()
		if s == "" || strings.HasPrefix(s, "code(") {
			t.Errorf("Code %d has no real String(): %q", code, s)
		}
		if prev, dup := seenStr[s]; dup {
			t.Errorf("Code %d and %d share the String %q", prev, code, s)
		}
		seenStr[s] = code

		sent := code.Sentinel()
		if sent == nil {
			t.Errorf("Code %d (%s) has no Sentinel", code, s)
			continue
		}
		if prev, dup := seenSent[sent]; dup {
			t.Errorf("Code %d and %d share a sentinel", prev, code)
		}
		seenSent[sent] = code

		we := &WireError{Code: code, Msg: "detail", RetryAfter: 1500 * time.Millisecond}
		err := DecodeError(ErrorFields(we))
		if !errors.Is(err, sent) {
			t.Errorf("%s does not survive the round trip to its sentinel", s)
		}
		var got *WireError
		if !errors.As(err, &got) {
			t.Fatalf("%s decoded to %T", s, err)
		}
		if got.Code != code || got.Msg != "detail" || got.RetryAfter != we.RetryAfter {
			t.Errorf("%s round trip = {%v %q %v}, want {%v %q %v}",
				s, got.Code, got.Msg, got.RetryAfter, code, "detail", we.RetryAfter)
		}
	}
	// Past the end: the fallback form is the give-away that lastCode and
	// the assigned codes are in sync.
	if s := Code(lastCode + 1).String(); !strings.HasPrefix(s, "code(") {
		t.Errorf("Code past lastCode has a real String %q; lastCode is stale", s)
	}
}

// TestErrorFieldsRetryAfterOptional: the third error field is only
// present when a hint is set, and old two-field errors still decode.
func TestErrorFieldsRetryAfterOptional(t *testing.T) {
	if n := len(ErrorFields(&WireError{Code: CodeNoRoot, Msg: "m"})); n != 2 {
		t.Errorf("hintless error encoded %d fields, want 2", n)
	}
	if n := len(ErrorFields(&WireError{Code: CodeOverloaded, Msg: "m", RetryAfter: time.Millisecond})); n != 3 {
		t.Errorf("hinted error encoded %d fields, want 3", n)
	}
	err := DecodeError([][]byte{{byte(CodeNoRoot)}, []byte("old peer")})
	var we *WireError
	if !errors.As(err, &we) || we.RetryAfter != 0 {
		t.Errorf("two-field decode = %v, want RetryAfter 0", err)
	}
}

func TestHealthFieldsRoundTrip(t *testing.T) {
	for _, h := range []Health{
		{},
		{Poisoned: true, InFlight: 3, Sessions: 2, Roots: 41, Uptime: 90 * time.Second},
		{DurableEnd: 4096, AckedEnd: 8192}, // async: acked ahead of durable
	} {
		got, err := DecodeHealth(HealthFields(h))
		if err != nil {
			t.Fatalf("DecodeHealth(%+v): %v", h, err)
		}
		if got != h {
			t.Errorf("round trip = %+v, want %+v", got, h)
		}
	}
	// A six-field payload (a pre-group-commit server without the AckedEnd
	// watermark) still decodes; nothing was acked beyond the durable end
	// there, so AckedEnd reports the durable end.
	legacy := HealthFields(Health{DurableEnd: 777, AckedEnd: 777})[:6]
	got, err := DecodeHealth(legacy)
	if err != nil {
		t.Fatalf("DecodeHealth(6 fields): %v", err)
	}
	if got.AckedEnd != 777 || got.DurableEnd != 777 {
		t.Errorf("legacy decode = %+v, want AckedEnd = DurableEnd = 777", got)
	}
	// Malformed health payloads are diagnosed, not trusted.
	for name, fields := range map[string][][]byte{
		"too few fields":  HealthFields(Health{})[:4],
		"oversized flags": {{1, 2}, {0}, {0}, {0}, {0}},
		"bad uvarint":     {{0}, {0x80}, {0}, {0}, {0}},
	} {
		if _, err := DecodeHealth(fields); !errors.Is(err, ErrBadFrame) {
			t.Errorf("%s: err = %v, want ErrBadFrame", name, err)
		}
	}
}

func TestSplitFieldsAliasesInput(t *testing.T) {
	payload := []byte{1, 'a', 2, 'b', 'c', 0}
	fields, err := SplitFields(payload)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]byte{[]byte("a"), []byte("bc"), {}}
	if !reflect.DeepEqual(fields, want) {
		t.Fatalf("fields = %q", fields)
	}
}

// TestOpcodeExhaustiveness walks every assigned request opcode the same
// way TestCodeExhaustiveness walks the codes: each must have a real
// OpName (no op(0xNN) fallback), names must be distinct, the traced
// variant must name identically, and a frame round-trips. Appending an
// opcode (STATS was the last) without extending OpName fails here.
func TestOpcodeExhaustiveness(t *testing.T) {
	seen := map[string]byte{}
	for op := OpPing; op <= lastRequestOp; op++ {
		name := OpName(op)
		if name == "" || strings.HasPrefix(name, "op(") {
			t.Errorf("opcode %#x has no real OpName: %q", op, name)
		}
		if prev, dup := seen[name]; dup {
			t.Errorf("opcodes %#x and %#x share the name %q", prev, op, name)
		}
		seen[name] = op
		if got := OpName(op | TraceFlag); got != name {
			t.Errorf("traced opcode %#x names %q, want %q", op|TraceFlag, got, name)
		}
		if op >= TraceFlag {
			t.Errorf("request opcode %#x collides with TraceFlag", op)
		}

		// Encode → decode round trip for the opcode byte itself.
		var buf bytes.Buffer
		if err := WriteFrame(&buf, 0, op, []byte("f")); err != nil {
			t.Fatalf("WriteFrame(%s): %v", name, err)
		}
		got, _, err := ReadFrame(&buf, 0)
		if err != nil || got != op {
			t.Errorf("%s round trip = %#x, %v", name, got, err)
		}
	}
	// Past the end: the fallback form is the give-away that lastRequestOp
	// and OpName are in sync.
	if s := OpName(lastRequestOp + 1); !strings.HasPrefix(s, "op(") {
		t.Errorf("opcode past lastRequestOp has a real OpName %q; lastRequestOp is stale", s)
	}
	for _, op := range []byte{OpOK, OpValues, OpError} {
		if s := OpName(op); strings.HasPrefix(s, "op(") {
			t.Errorf("response opcode %#x has no real OpName", op)
		}
	}
}

// TestTraceRoundTrip: AppendTrace and SplitTrace are inverses, untraced
// frames pass through unchanged, and malformed traced frames are typed
// protocol violations.
func TestTraceRoundTrip(t *testing.T) {
	fields := [][]byte{[]byte("name"), {1, 2, 3}}
	for _, trace := range []uint64{0, 1, 1 << 20, 1<<64 - 1} {
		op, traced := AppendTrace(OpPut, trace, fields)
		if op != OpPut|TraceFlag {
			t.Fatalf("AppendTrace op = %#x", op)
		}
		if len(traced) != len(fields)+1 {
			t.Fatalf("AppendTrace fields = %d, want %d", len(traced), len(fields)+1)
		}
		base, gotTrace, rest, wasTraced, err := SplitTrace(op, traced)
		if err != nil || !wasTraced || base != OpPut || gotTrace != trace {
			t.Fatalf("SplitTrace = (%#x, %d, traced=%v, %v), want (%#x, %d, true, nil)",
				base, gotTrace, wasTraced, err, OpPut, trace)
		}
		if !reflect.DeepEqual(rest, fields) {
			t.Errorf("SplitTrace rest = %q, want %q", rest, fields)
		}
	}

	// Untraced: identity, zero trace, traced=false.
	base, trace, rest, wasTraced, err := SplitTrace(OpGet, fields)
	if err != nil || wasTraced || base != OpGet || trace != 0 || !reflect.DeepEqual(rest, fields) {
		t.Errorf("untraced SplitTrace = (%#x, %d, traced=%v, %v)", base, trace, wasTraced, err)
	}

	// The traced frame survives the wire.
	op, traced := AppendTrace(OpGet, 777, [][]byte{[]byte("x")})
	var buf bytes.Buffer
	if err := WriteFrame(&buf, 0, op, traced...); err != nil {
		t.Fatal(err)
	}
	rop, rfields, err := ReadFrame(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if base, tr, rest, ok, err := SplitTrace(rop, rfields); err != nil || !ok || base != OpGet || tr != 777 || string(rest[0]) != "x" {
		t.Errorf("wire round trip = (%#x, %d, %q, %v, %v)", base, tr, rest, ok, err)
	}

	// Malformed traced frames: no fields at all, or a trace field that is
	// not exactly one uvarint.
	for name, bad := range map[string][][]byte{
		"no fields":      nil,
		"empty trace":    {{}},
		"trailing bytes": {{0x01, 0xFF}},
		"unterminated":   {bytes.Repeat([]byte{0x80}, 10)},
	} {
		if _, _, _, _, err := SplitTrace(OpGet|TraceFlag, bad); !errors.Is(err, ErrBadFrame) {
			t.Errorf("%s: err = %v, want ErrBadFrame", name, err)
		}
	}
}

// TestAppendTracedFrame: the single-pass traced-frame encoder is byte-
// identical to AppendFrame over AppendTrace's output (so the server's
// decoder cannot tell which path a client used), refuses oversize frames
// the same way, and costs zero allocations with a reused buffer — the
// client's stamping path depends on that (EXPERIMENTS.md E15).
func TestAppendTracedFrame(t *testing.T) {
	fields := [][]byte{[]byte("root"), {1, 2, 3, 4}}
	for _, trace := range []uint64{0, 1, 1 << 20, 1<<64 - 1} {
		op, tf := AppendTrace(OpPut, trace, fields)
		want, err := AppendFrame(nil, 0, op, tf...)
		if err != nil {
			t.Fatal(err)
		}
		got, err := AppendTracedFrame(nil, 0, OpPut, trace, fields...)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("trace %d: AppendTracedFrame differs from AppendFrame∘AppendTrace:\n%x\n%x", trace, got, want)
		}
	}

	// Oversize refusal, typed like AppendFrame's.
	if _, err := AppendTracedFrame(nil, 8, OpPut, 1, bytes.Repeat([]byte{'x'}, 64)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversize traced frame: err = %v, want ErrTooLarge", err)
	}

	// Zero allocations once the destination buffer has capacity.
	buf := make([]byte, 0, 256)
	allocs := testing.AllocsPerRun(100, func() {
		b, err := AppendTracedFrame(buf[:0], 0, OpPut, 0xDEADBEEF, fields...)
		if err != nil || len(b) == 0 {
			t.Fatal("encode failed")
		}
	})
	if allocs != 0 {
		t.Fatalf("AppendTracedFrame allocates %v times per frame, want 0", allocs)
	}
}
