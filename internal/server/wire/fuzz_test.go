package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
	"time"

	"dbpl/internal/persist/codec"
	"dbpl/internal/types"
	"dbpl/internal/value"
)

// FuzzReadFrame is the wire-decoder contract, the same one
// persist/codec/fuzz_test.go enforces for the image codec: any byte
// stream — malformed frames, truncated length prefixes, oversize claims —
// yields frames or a *WireError, never a panic and never an allocation
// beyond the frame limit; and every frame that decodes re-encodes to a
// frame that decodes identically.
func FuzzReadFrame(f *testing.F) {
	// Seed corpus: every request shape the protocol defines, plus
	// degenerate inputs.
	mustFrame := func(op byte, fields ...[]byte) []byte {
		b, err := AppendFrame(nil, 0, op, fields...)
		if err != nil {
			f.Fatal(err)
		}
		return b
	}
	typeImg, err := MarshalType(types.MustParse("{Name: String, Age: Int}"))
	if err != nil {
		f.Fatal(err)
	}
	tagged, err := codec.MarshalTagged(value.Rec("Name", value.String("J Doe")), nil)
	if err != nil {
		f.Fatal(err)
	}
	// A client-stamped idempotency key, as Put/Delete/Commit carry it.
	idemKey := []byte{1, 2, 3, 4, 5, 6, 7, 8, 0, 0, 0, 0, 0, 0, 0, 9}
	f.Add(mustFrame(OpPing))
	f.Add(mustFrame(OpHealth))
	f.Add(mustFrame(OpGet, typeImg))
	f.Add(mustFrame(OpPut, []byte("root"), tagged))
	f.Add(mustFrame(OpPut, []byte("root"), tagged, idemKey))
	f.Add(mustFrame(OpDelete, []byte("root")))
	f.Add(mustFrame(OpDelete, []byte("root"), idemKey))
	f.Add(mustFrame(OpCommit, idemKey))
	f.Add(mustFrame(OpStats))
	// Index administration and plan inspection.
	f.Add(mustFrame(OpCreateIndex, []byte("Empno")))
	f.Add(mustFrame(OpCreateIndex, []byte("Empno"), idemKey))
	f.Add(mustFrame(OpDropIndex, []byte("Empno"), idemKey))
	f.Add(mustFrame(OpExplain, typeImg))
	f.Add(mustFrame(OpExplain, typeImg, typeImg))
	// Traced frames: flag set, leading uvarint trace-ID field.
	tracedOp, tracedFields := AppendTrace(OpGet, 0xDEADBEEF, [][]byte{typeImg})
	f.Add(mustFrame(tracedOp, tracedFields...))
	echoOp, echoFields := AppendTrace(OpOK, 0xDEADBEEF, nil)
	f.Add(mustFrame(echoOp, echoFields...))
	f.Add(mustFrame(OpGet | TraceFlag))                               // traced without a trace field
	f.Add(mustFrame(OpGet|TraceFlag, []byte{0xFF, 0xFF, 0xFF, 0xFF})) // unterminated trace uvarint
	f.Add(mustFrame(OpError, []byte{byte(CodeIO)}, []byte("write failed")))
	f.Add(mustFrame(OpError, ErrorFields(&WireError{Code: CodeOverloaded,
		Msg: "shed", RetryAfter: 50 * time.Millisecond})...))
	f.Add(mustFrame(OpOK, HealthFields(Health{Poisoned: true, InFlight: 7,
		Sessions: 2, Roots: 100, Uptime: time.Hour})...))
	// The durable-watermark pair: acked ahead of durable (async mode), and
	// the legacy six-field shape without AckedEnd.
	f.Add(mustFrame(OpOK, HealthFields(Health{DurableEnd: 1 << 20, AckedEnd: 1<<20 + 512})...))
	f.Add(mustFrame(OpOK, HealthFields(Health{DurableEnd: 1 << 20})[:6]...))
	// Replication: the subscribe request and both stream frame shapes,
	// plus damaged variants (truncated group bytes, oversize offset, bad
	// CRC trailer) — each must decode to a *WireError, never panic.
	f.Add(mustFrame(OpReplicate, ReplicateFields(8, 3)...))
	f.Add(mustFrame(OpReplicate, UvarintField(8)))                                                    // legacy single-field form
	f.Add(mustFrame(OpReplicate, []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01})) // > MaxInt64
	f.Add(mustFrame(OpRepData, ReplDataFields(8, []byte("NOTALOGGROUP"), 2)...))
	f.Add(func() []byte { // truncated group payload invalidating the CRC
		fields := ReplDataFields(8, []byte("group-bytes-here"), 2)
		fields[1] = fields[1][:4]
		return mustFrame(OpRepData, fields...)
	}())
	f.Add(func() []byte { // flipped CRC trailer
		fields := ReplDataFields(8, []byte("group-bytes-here"), 2)
		fields[3][0] ^= 0x40
		return mustFrame(OpRepData, fields...)
	}())
	f.Add(func() []byte { // flipped epoch field (the byte fencing trusts)
		fields := ReplDataFields(8, []byte("group-bytes-here"), 2)
		fields[2][0] ^= 0x01
		return mustFrame(OpRepData, fields...)
	}())
	f.Add(mustFrame(OpRepData, []byte{8}, []byte("raw"))) // missing trailer
	// The trace-carrying six-field REPDATA form, plus damaged variants
	// (flipped trace ID, flipped commit timestamp, truncated to five
	// fields) — corrupt trace context must fail the CRC, never leak into
	// a follower's apply path.
	f.Add(mustFrame(OpRepData, ReplDataTraceFields(8, []byte("group-bytes-here"), 2, 0xDEADBEEF, 1<<60)...))
	f.Add(func() []byte { // flipped trace-ID field
		fields := ReplDataTraceFields(8, []byte("group-bytes-here"), 2, 0xDEADBEEF, 1<<60)
		fields[3][0] ^= 0x01
		return mustFrame(OpRepData, fields...)
	}())
	f.Add(func() []byte { // flipped commit-time field
		fields := ReplDataTraceFields(8, []byte("group-bytes-here"), 2, 0xDEADBEEF, 1<<60)
		fields[4][0] ^= 0x01
		return mustFrame(OpRepData, fields...)
	}())
	f.Add(mustFrame(OpRepData, ReplDataTraceFields(8, []byte("group-bytes-here"), 2, 0xDEADBEEF, 1<<60)[:5]...))
	// The TRACES opcode: empty request, a response field carrying junk
	// that the trace decoder must reject gracefully, and a traced TRACES
	// request (flag + trace ID on the trace-fetch itself).
	f.Add(mustFrame(OpTraces))
	f.Add(mustFrame(OpOK, []byte{'T', 1, 0xFF, 0xFF}))
	tracesOp, tracesFields := AppendTrace(OpTraces, 0xBEEF, nil)
	f.Add(mustFrame(tracesOp, tracesFields...))
	f.Add(mustFrame(OpRepHeartbeat, HeartbeatFields(1<<40, 5)...))
	f.Add(mustFrame(OpRepHeartbeat, UvarintField(64))) // legacy single-field form
	f.Add(mustFrame(OpRepHeartbeat))
	// Failover: the self-promote order, the fence notification, and a
	// malformed fence epoch.
	f.Add(mustFrame(OpPromote))
	f.Add(mustFrame(OpPromote, FenceFields(9, "10.0.0.2:7070")...))
	f.Add(mustFrame(OpPromote, []byte{0xFF}, []byte("addr")))
	// The nine-field HEALTH payload with role and epoch, and the
	// seven-field pre-failover shape.
	f.Add(mustFrame(OpOK, HealthFields(Health{ReadOnly: true, Role: RoleFenced, Epoch: 4,
		DurableEnd: 1 << 20, AckedEnd: 1 << 20})...))
	f.Add(mustFrame(OpOK, HealthFields(Health{DurableEnd: 1 << 20, AckedEnd: 1<<20 + 512})[:7]...))
	f.Add(append(mustFrame(OpBegin), mustFrame(OpCommit)...)) // pipelined
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1})
	f.Add(mustFrame(OpGet, typeImg)[:7]) // truncated mid-payload
	f.Add(func() []byte {                // field length claiming past the end
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], 3)
		return append(hdr[:], OpGet, 0xF0, 0x01)
	}())

	const limit = 1 << 20
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			op, fields, err := ReadFrame(r, limit)
			if err != nil {
				// Every failure must be a classified wire error or a raw
				// transport error at/inside the header.
				var we *WireError
				if !errors.As(err, &we) && err != io.EOF && err != io.ErrUnexpectedEOF {
					t.Fatalf("unclassified decode error: %v", err)
				}
				return
			}
			// Decoded frames re-encode and re-decode to the same frame.
			reenc, err := AppendFrame(nil, limit, op, fields...)
			if err != nil {
				t.Fatalf("re-encode of decoded frame failed: %v", err)
			}
			op2, fields2, err := ReadFrame(bytes.NewReader(reenc), limit)
			if err != nil {
				t.Fatalf("re-decode failed: %v", err)
			}
			if op2 != op || len(fields2) != len(fields) {
				t.Fatalf("re-decode mismatch: op %#x/%#x, %d/%d fields",
					op, op2, len(fields), len(fields2))
			}
			for i := range fields {
				if !bytes.Equal(fields[i], fields2[i]) {
					t.Fatalf("field %d mismatch", i)
				}
			}
		}
	})
}
