package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"
)

// TestReplicateReqRoundTrip: the subscribe request carries its offset and
// the subscriber's epoch losslessly, and malformed offsets are typed bad
// requests.
func TestReplicateReqRoundTrip(t *testing.T) {
	for _, from := range []int64{0, 8, 1 << 20, 1<<62 + 12345} {
		for _, epoch := range []uint64{0, 1, 1 << 50} {
			got, gotEpoch, err := DecodeReplicateReq(ReplicateFields(from, epoch))
			if err != nil {
				t.Fatalf("DecodeReplicateReq(%d, %d): %v", from, epoch, err)
			}
			if got != from || gotEpoch != epoch {
				t.Fatalf("(%d, %d) round-tripped to (%d, %d)", from, epoch, got, gotEpoch)
			}
		}
	}
	// The pre-failover single-field form still decodes, with epoch 0.
	got, gotEpoch, err := DecodeReplicateReq([][]byte{UvarintField(8)})
	if err != nil || got != 8 || gotEpoch != 0 {
		t.Fatalf("legacy REPLICATE = (%d, %d, %v), want (8, 0, nil)", got, gotEpoch, err)
	}
	bad := [][][]byte{
		{},                        // no fields
		{{1}, {2}, {3}},           // three fields
		{{0xFF}},                  // unterminated uvarint
		{UvarintField(8), {0xFF}}, // unterminated epoch
		{{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01}}, // > MaxInt64
	}
	for i, fields := range bad {
		if _, _, err := DecodeReplicateReq(fields); !errors.Is(err, ErrBadRequest) {
			t.Errorf("bad request %d decoded to %v, want ErrBadRequest", i, err)
		}
	}
}

// TestReplDataRoundTrip: a REPDATA frame carries offset, raw group bytes
// and the primary's epoch under a CRC-32C that survives encode/decode.
func TestReplDataRoundTrip(t *testing.T) {
	raw := []byte("pretend-commit-group-bytes")
	d, err := DecodeReplData(ReplDataFields(4096, raw, 7))
	if err != nil {
		t.Fatal(err)
	}
	if d.Start != 4096 || !bytes.Equal(d.Raw, raw) || d.Epoch != 7 {
		t.Fatalf("round trip = (%d, %q, %d), want (4096, %q, 7)", d.Start, d.Raw, d.Epoch, raw)
	}
	if d.Trace != 0 || d.CommitNS != 0 {
		t.Fatalf("untraced frame decoded trace context: %+v", d)
	}
	// Empty payload is legal (it cannot happen on a live stream, but the
	// decoder must not care).
	if d, err = DecodeReplData(ReplDataFields(8, nil, 0)); err != nil || len(d.Raw) != 0 {
		t.Fatalf("empty round trip = (%q, %v)", d.Raw, err)
	}
}

// TestReplDataTraceForm: the six-field frame carries the originating
// commit's trace ID and publication time under the widened CRC, and a
// flipped bit in either new field is caught.
func TestReplDataTraceForm(t *testing.T) {
	raw := []byte("group-bytes")
	fields := ReplDataTraceFields(4096, raw, 7, 0xabcdef, 1722222222000000000)
	if len(fields) != 6 {
		t.Fatalf("traced REPDATA has %d fields, want 6", len(fields))
	}
	d, err := DecodeReplData(fields)
	if err != nil {
		t.Fatal(err)
	}
	if d.Start != 4096 || !bytes.Equal(d.Raw, raw) || d.Epoch != 7 ||
		d.Trace != 0xabcdef || d.CommitNS != 1722222222000000000 {
		t.Fatalf("traced round trip = %+v", d)
	}
	for _, field := range []int{3, 4} {
		fields := ReplDataTraceFields(4096, raw, 7, 0xabcdef, 1722222222000000000)
		fields[field] = append([]byte(nil), fields[field]...)
		fields[field][0] ^= 0x01
		if _, err := DecodeReplData(fields); !errors.Is(err, ErrRemoteCorrupt) {
			t.Errorf("flipped field %d decoded to %v, want ErrRemoteCorrupt", field, err)
		}
	}
}

// TestReplDataLegacyForm: the pre-failover three-field frame (no epoch;
// CRC over offset+raw only) still decodes, with epoch 0 — a new follower
// can stream from an old primary.
func TestReplDataLegacyForm(t *testing.T) {
	modern := ReplDataFields(4096, []byte("group-bytes"), 0)
	// Rebuild the legacy frame: offset, raw, CRC over those two alone.
	legacy := legacyReplDataFields(4096, []byte("group-bytes"))
	d, err := DecodeReplData(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if d.Start != 4096 || string(d.Raw) != "group-bytes" || d.Epoch != 0 {
		t.Fatalf("legacy decode = (%d, %q, %d)", d.Start, d.Raw, d.Epoch)
	}
	// And the modern frame is not confused for it: 4 fields decode the
	// epoch under the wider CRC.
	if len(modern) != 4 {
		t.Fatalf("modern REPDATA has %d fields, want 4", len(modern))
	}
}

// legacyReplDataFields reproduces the pre-failover encoder for
// compatibility tests: [offset, raw, crc], CRC-32C over offset+raw.
func legacyReplDataFields(start int64, raw []byte) [][]byte {
	off := UvarintField(uint64(start))
	sum := crc32.Update(crc32.Update(0, replCRCTable, off), replCRCTable, raw)
	var tr [4]byte
	binary.LittleEndian.PutUint32(tr[:], sum)
	return [][]byte{off, raw, tr[:]}
}

// TestReplDataDetectsCorruption: any bit flip — in the offset, the
// payload, the epoch, or the trailer itself — fails the checksum with
// CodeCorrupt, which tells the follower to drop the link and resubscribe
// rather than apply the bytes (or fence on a damaged epoch).
func TestReplDataDetectsCorruption(t *testing.T) {
	raw := []byte("pretend-commit-group-bytes")
	for _, flip := range []struct {
		name  string
		field int
		bit   byte
	}{
		{"offset", 0, 0x01},
		{"payload", 1, 0x80},
		{"epoch", 2, 0x01},
		{"trailer", 3, 0x10},
	} {
		fields := ReplDataFields(4096, raw, 99)
		fields[flip.field] = append([]byte(nil), fields[flip.field]...)
		fields[flip.field][0] ^= flip.bit
		_, err := DecodeReplData(fields)
		if !errors.Is(err, ErrRemoteCorrupt) {
			t.Errorf("flipped %s decoded to %v, want ErrRemoteCorrupt", flip.name, err)
		}
		var we *WireError
		if !errors.As(err, &we) || we.Code != CodeCorrupt {
			t.Errorf("flipped %s: %v is not a CodeCorrupt WireError", flip.name, err)
		}
	}
}

// TestReplDataMalformed: structurally damaged frames are CodeBadFrame,
// never a panic.
func TestReplDataMalformed(t *testing.T) {
	good := ReplDataFields(8, []byte("raw"), 1)
	traced := ReplDataTraceFields(8, []byte("raw"), 1, 2, 3)
	bad := [][][]byte{
		{},                                  // no fields
		good[:2],                            // missing epoch and trailer
		{good[0], good[1], good[2], {1}},    // short trailer
		{{0xFF}, good[1], good[2], good[3]}, // unterminated offset
		{{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01}, good[1], good[2], good[3]}, // oversize offset
		traced[:5], // five fields is no generation of the frame
		{traced[0], traced[1], traced[2], {0xFF}, traced[4], traced[5]}, // unterminated trace ID
	}
	for i, fields := range bad {
		if _, err := DecodeReplData(fields); !errors.Is(err, ErrBadFrame) {
			t.Errorf("malformed frame %d decoded to %v, want ErrBadFrame", i, err)
		}
	}
}

// TestHeartbeatRoundTrip: the keepalive carries the primary's durable end
// and epoch; the legacy single-field form implies epoch 0.
func TestHeartbeatRoundTrip(t *testing.T) {
	got, epoch, err := DecodeHeartbeat(HeartbeatFields(1<<40, 12))
	if err != nil || got != 1<<40 || epoch != 12 {
		t.Fatalf("heartbeat round trip = (%d, %d, %v)", got, epoch, err)
	}
	got, epoch, err = DecodeHeartbeat([][]byte{UvarintField(64)})
	if err != nil || got != 64 || epoch != 0 {
		t.Fatalf("legacy heartbeat = (%d, %d, %v), want (64, 0, nil)", got, epoch, err)
	}
	for i, fields := range [][][]byte{{}, {{0xFF}}, {{1}, {2}, {3}}, {UvarintField(1), {0xFF}}} {
		if _, _, err := DecodeHeartbeat(fields); !errors.Is(err, ErrBadFrame) {
			t.Errorf("malformed heartbeat %d decoded to %v, want ErrBadFrame", i, err)
		}
	}
}

// TestPromoteRoundTrip: the PROMOTE request's two faces — the empty
// self-promote order and the [epoch, newPrimary] fence notification.
func TestPromoteRoundTrip(t *testing.T) {
	epoch, addr, fence, err := DecodePromote(nil)
	if err != nil || fence || epoch != 0 || addr != "" {
		t.Fatalf("self-promote decode = (%d, %q, %v, %v)", epoch, addr, fence, err)
	}
	epoch, addr, fence, err = DecodePromote(FenceFields(9, "10.0.0.2:7070"))
	if err != nil || !fence || epoch != 9 || addr != "10.0.0.2:7070" {
		t.Fatalf("fence decode = (%d, %q, %v, %v)", epoch, addr, fence, err)
	}
	for i, fields := range [][][]byte{{{1}}, {{1}, {2}, {3}}, {{0xFF}, []byte("x")}} {
		if _, _, _, err := DecodePromote(fields); !errors.Is(err, ErrBadRequest) {
			t.Errorf("malformed PROMOTE %d decoded to %v, want ErrBadRequest", i, err)
		}
	}
}

// TestHealthCarriesReplicationFields: the extended HEALTH payload round-
// trips the role, epoch, follower flag and durable offset next to the
// original fields, and a short frame stays a typed decode error.
func TestHealthCarriesReplicationFields(t *testing.T) {
	want := Health{
		Poisoned: true, ReadOnly: true,
		InFlight: 3, Sessions: 9, Roots: 42,
		Uptime: 90210, DurableEnd: 1 << 33, AckedEnd: 1 << 33,
		Role: RoleFenced, Epoch: 4,
	}
	got, err := DecodeHealth(HealthFields(want))
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("Health round trip = %+v, want %+v", got, want)
	}
	if _, err := DecodeHealth(HealthFields(want)[:5]); !errors.Is(err, ErrBadFrame) {
		t.Errorf("short HEALTH decoded to %v, want ErrBadFrame", err)
	}
}

// TestHealthLegacyForms: six-field (pre-group-commit) and seven-field
// (pre-failover) HEALTH payloads still decode; the role is derived from
// the ReadOnly flag and the epoch defaults to 0.
func TestHealthLegacyForms(t *testing.T) {
	full := HealthFields(Health{
		ReadOnly: true, InFlight: 1, Sessions: 2, Roots: 3,
		Uptime: 4, DurableEnd: 500, AckedEnd: 600,
	})
	got7, err := DecodeHealth(full[:7])
	if err != nil {
		t.Fatal(err)
	}
	if got7.Role != RoleFollower || got7.Epoch != 0 || got7.AckedEnd != 600 {
		t.Fatalf("7-field decode = %+v", got7)
	}
	got6, err := DecodeHealth(full[:6])
	if err != nil {
		t.Fatal(err)
	}
	if got6.AckedEnd != got6.DurableEnd || got6.Role != RoleFollower {
		t.Fatalf("6-field decode = %+v", got6)
	}
	// A writable primary's legacy payload derives RolePrimary.
	writable := HealthFields(Health{Roots: 1})
	gotW, err := DecodeHealth(writable[:7])
	if err != nil || gotW.Role != RolePrimary {
		t.Fatalf("legacy writable decode = (%+v, %v)", gotW, err)
	}
}
