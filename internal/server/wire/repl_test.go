package wire

import (
	"bytes"
	"errors"
	"testing"
)

// TestReplicateReqRoundTrip: the subscribe request carries its offset
// losslessly, and malformed offsets are typed bad requests.
func TestReplicateReqRoundTrip(t *testing.T) {
	for _, from := range []int64{0, 8, 1 << 20, 1<<62 + 12345} {
		got, err := DecodeReplicateReq(ReplicateFields(from))
		if err != nil {
			t.Fatalf("DecodeReplicateReq(%d): %v", from, err)
		}
		if got != from {
			t.Fatalf("offset %d round-tripped to %d", from, got)
		}
	}
	bad := [][][]byte{
		{},               // no fields
		{{0x01}, {0x02}}, // two fields
		{{0xFF}},         // unterminated uvarint
		{{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01}}, // > MaxInt64
	}
	for i, fields := range bad {
		if _, err := DecodeReplicateReq(fields); !errors.Is(err, ErrBadRequest) {
			t.Errorf("bad request %d decoded to %v, want ErrBadRequest", i, err)
		}
	}
}

// TestReplDataRoundTrip: a REPDATA frame carries offset and raw group
// bytes under a CRC-32C that survives encode/decode.
func TestReplDataRoundTrip(t *testing.T) {
	raw := []byte("pretend-commit-group-bytes")
	start, got, err := DecodeReplData(ReplDataFields(4096, raw))
	if err != nil {
		t.Fatal(err)
	}
	if start != 4096 || !bytes.Equal(got, raw) {
		t.Fatalf("round trip = (%d, %q), want (4096, %q)", start, got, raw)
	}
	// Empty payload is legal (it cannot happen on a live stream, but the
	// decoder must not care).
	if _, got, err = DecodeReplData(ReplDataFields(8, nil)); err != nil || len(got) != 0 {
		t.Fatalf("empty round trip = (%q, %v)", got, err)
	}
}

// TestReplDataDetectsCorruption: any bit flip — in the offset, the
// payload, or the trailer itself — fails the checksum with CodeCorrupt,
// which tells the follower to drop the link and resubscribe rather than
// apply the bytes.
func TestReplDataDetectsCorruption(t *testing.T) {
	raw := []byte("pretend-commit-group-bytes")
	for _, flip := range []struct {
		name  string
		field int
		bit   byte
	}{
		{"offset", 0, 0x01},
		{"payload", 1, 0x80},
		{"trailer", 2, 0x10},
	} {
		fields := ReplDataFields(4096, raw)
		fields[flip.field] = append([]byte(nil), fields[flip.field]...)
		fields[flip.field][0] ^= flip.bit
		_, _, err := DecodeReplData(fields)
		if !errors.Is(err, ErrRemoteCorrupt) {
			t.Errorf("flipped %s decoded to %v, want ErrRemoteCorrupt", flip.name, err)
		}
		var we *WireError
		if !errors.As(err, &we) || we.Code != CodeCorrupt {
			t.Errorf("flipped %s: %v is not a CodeCorrupt WireError", flip.name, err)
		}
	}
}

// TestReplDataMalformed: structurally damaged frames are CodeBadFrame,
// never a panic.
func TestReplDataMalformed(t *testing.T) {
	good := ReplDataFields(8, []byte("raw"))
	bad := [][][]byte{
		{},                         // no fields
		good[:2],                   // missing trailer
		{good[0], good[1], {1}},    // short trailer
		{{0xFF}, good[1], good[2]}, // unterminated offset
		{{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01}, good[1], good[2]}, // oversize offset
	}
	for i, fields := range bad {
		if _, _, err := DecodeReplData(fields); !errors.Is(err, ErrBadFrame) {
			t.Errorf("malformed frame %d decoded to %v, want ErrBadFrame", i, err)
		}
	}
}

// TestHeartbeatRoundTrip: the keepalive carries the primary's durable end.
func TestHeartbeatRoundTrip(t *testing.T) {
	got, err := DecodeHeartbeat(HeartbeatFields(1 << 40))
	if err != nil || got != 1<<40 {
		t.Fatalf("heartbeat round trip = (%d, %v)", got, err)
	}
	for i, fields := range [][][]byte{{}, {{0xFF}}, {{1}, {2}}} {
		if _, err := DecodeHeartbeat(fields); !errors.Is(err, ErrBadFrame) {
			t.Errorf("malformed heartbeat %d decoded to %v, want ErrBadFrame", i, err)
		}
	}
}

// TestHealthCarriesReplicationFields: the extended HEALTH payload round-
// trips the follower flag and durable offset next to the original fields,
// and a short frame stays a typed decode error.
func TestHealthCarriesReplicationFields(t *testing.T) {
	want := Health{
		Poisoned: true, ReadOnly: true,
		InFlight: 3, Sessions: 9, Roots: 42,
		Uptime: 90210, DurableEnd: 1 << 33,
	}
	got, err := DecodeHealth(HealthFields(want))
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("Health round trip = %+v, want %+v", got, want)
	}
	if _, err := DecodeHealth(HealthFields(want)[:5]); !errors.Is(err, ErrBadFrame) {
		t.Errorf("short HEALTH decoded to %v, want ErrBadFrame", err)
	}
}
