// Package wire is the dbpl network protocol: the framing, opcodes and
// error taxonomy shared by the server (internal/server) and the client
// package (dbpl/client).
//
// A frame is a 4-byte big-endian payload length followed by the payload:
// one opcode byte and zero or more *fields*, each a uvarint length prefix
// followed by that many bytes. Fields carry UTF-8 names, single bytes
// (error codes, booleans) or complete persist/codec images — the same
// self-describing value+type encoding every persistence store uses, so a
// value travels the network exactly as it travels to disk (the paper's
// second principle: while a value persists — or here, transits — so does
// its type).
//
// The decoder is hardened the same way the image codec is: a malformed
// frame, a truncated length prefix or an oversize length claim yields a
// *WireError, never a panic and never an allocation larger than the
// configured frame limit. FuzzReadFrame enforces this.
//
// Remote failures keep their local diagnosability: a *WireError carries a
// Code and the server's message, and unwraps to a per-code sentinel —
// CodeIO additionally unwraps to iofault.ErrIOFailed, so
// errors.Is(err, iofault.ErrIOFailed) holds across the network exactly as
// it does against a local store.
package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"time"

	"dbpl/internal/persist/codec"
	"dbpl/internal/persist/iofault"
	"dbpl/internal/types"
)

// MaxFrame is the default bound on a frame payload. A peer claiming a
// larger frame is refused before any allocation.
const MaxFrame = 16 << 20

const headerLen = 4

// Request opcodes. The write opcodes (PUT, DELETE, COMMIT) accept one
// optional trailing field: a client-stamped *idempotency key*, opaque
// bytes the server remembers in a bounded LRU of applied write ids so a
// retried frame — sent again because the acknowledgement was lost, not
// because the write failed — applies exactly once.
const (
	OpPing   byte = 0x01 // []                        -> OK []
	OpGet    byte = 0x02 // [type-image]              -> Values [tagged...]
	OpPut    byte = 0x03 // [name, tagged-image, id?] -> OK []
	OpDelete byte = 0x04 // [name, id?]               -> OK [existed(1)]
	OpJoin   byte = 0x05 // [type-image, type-image]  -> Values [tagged...]
	OpBegin  byte = 0x06 // []                        -> OK []
	OpCommit byte = 0x07 // [id?]                     -> OK []
	OpAbort  byte = 0x08 // []                        -> OK []
	OpNames  byte = 0x09 // []                        -> OK [name...]
	OpHealth byte = 0x0A // []                        -> OK [health fields]
	OpStats  byte = 0x0B // []                        -> OK [snapshot]
	// Index administration (write opcodes: the id? field is the
	// idempotency key) and plan inspection.
	OpCreateIndex byte = 0x0C // [field, id?]              -> OK [created(1)]
	OpDropIndex   byte = 0x0D // [field, id?]              -> OK [existed(1)]
	OpExplain     byte = 0x0E // [type-image(, type-image)] -> OK [plan-text]
	// OpReplicate subscribes the connection to the primary's log: [from]
	// (uvarint durable offset) plus an optional second field, the
	// subscriber's promotion epoch — a server seeing a subscriber with a
	// higher epoch than its own has been superseded and fences itself.
	// The server answers with an open-ended stream of OpRepData /
	// OpRepHeartbeat frames instead of a single response; the connection
	// carries nothing else afterwards.
	OpReplicate byte = 0x0F
	// OpPromote is failover administration, gated by the server's
	// -allow-promote flag. With no fields it orders this server to
	// promote: bump the store epoch durably, leave follower mode and
	// start accepting writes ([] -> OK [epoch]). With fields
	// [epoch, newPrimaryAddr] it is the fence notification a newly
	// promoted primary sends its old upstream: you have been superseded
	// at this epoch, enter fenced read-only mode and refer writers to
	// newPrimaryAddr ([epoch, addr] -> OK []).
	OpPromote byte = 0x10
	// OpTraces fetches the server's ring of completed request trace
	// trees ([] -> OK [encoded-trace...], one binary trace per field,
	// newest first — see internal/telemetry/trace). Like STATS it
	// bypasses admission control, so span trees stay fetchable from an
	// overloaded server.
	OpTraces byte = 0x11
)

// lastRequestOp is the highest assigned request opcode. The opcode
// exhaustiveness test walks [OpPing, lastRequestOp]; update it when
// appending an opcode. Request opcodes must stay below TraceFlag.
const lastRequestOp = OpTraces

// Response opcodes. OpRepData and OpRepHeartbeat are the replication
// stream (see OpReplicate): REPDATA carries whole commit groups as raw log
// bytes [startOffset, raw, crc32c], where the 4-byte little-endian CRC-32C
// trailer covers the offset field followed by the raw bytes — so a flipped
// bit anywhere in the frame (offset or payload) is detected before the
// follower touches its log. REPHEARTBEAT is the idle keepalive
// [durableEnd], letting a follower distinguish a quiet primary from a dead
// link and track lag while fully caught up.
const (
	OpOK           byte = 0x80
	OpValues       byte = 0x81
	OpError        byte = 0x82 // [code(1), message]
	OpRepData      byte = 0x83 // [startOffset, rawGroups, crc32c(4)]
	OpRepHeartbeat byte = 0x84 // [durableEnd]
)

// TraceFlag marks a *traced* frame in either direction: the opcode byte
// has this bit set and the first field is a uvarint trace ID. A client
// stamps requests with trace IDs so the server can attribute slow-op log
// entries to the exact client call that suffered them; the server echoes
// the ID (and the flag) on the response. The extension is optional and
// backward compatible — an untraced frame is byte-identical to the
// pre-trace protocol, and request opcodes (< 0x40) and response opcodes
// (0x80–0xBF) never collide with the flag.
const TraceFlag byte = 0x40

// OpName names a request or response opcode for logs, metrics and the
// slow-op ring; a traced opcode names the same as its base. Unknown
// opcodes render as "op(0xNN)" — callers using names as metric labels
// must not feed them unvalidated peer opcodes, or a hostile peer could
// mint unbounded label cardinality.
func OpName(op byte) string {
	switch op &^ TraceFlag {
	case OpPing:
		return "PING"
	case OpGet:
		return "GET"
	case OpPut:
		return "PUT"
	case OpDelete:
		return "DELETE"
	case OpJoin:
		return "JOIN"
	case OpBegin:
		return "BEGIN"
	case OpCommit:
		return "COMMIT"
	case OpAbort:
		return "ABORT"
	case OpNames:
		return "NAMES"
	case OpHealth:
		return "HEALTH"
	case OpStats:
		return "STATS"
	case OpCreateIndex:
		return "CREATEINDEX"
	case OpDropIndex:
		return "DROPINDEX"
	case OpExplain:
		return "EXPLAIN"
	case OpReplicate:
		return "REPLICATE"
	case OpPromote:
		return "PROMOTE"
	case OpTraces:
		return "TRACES"
	case OpOK:
		return "OK"
	case OpValues:
		return "VALUES"
	case OpError:
		return "ERROR"
	case OpRepData:
		return "REPDATA"
	case OpRepHeartbeat:
		return "REPHEARTBEAT"
	default:
		return fmt.Sprintf("op(%#x)", op)
	}
}

// AppendTrace turns an untraced frame into a traced one: sets the flag
// on op and prepends the trace-ID field.
func AppendTrace(op byte, trace uint64, fields [][]byte) (byte, [][]byte) {
	return op | TraceFlag, append([][]byte{UvarintField(trace)}, fields...)
}

// SplitTrace undoes AppendTrace: for a traced frame it strips the flag
// and consumes the leading trace-ID field; an untraced frame passes
// through. A traced frame without a well-formed trace field is a
// protocol violation.
func SplitTrace(op byte, fields [][]byte) (base byte, trace uint64, rest [][]byte, traced bool, err error) {
	if op&TraceFlag == 0 {
		return op, 0, fields, false, nil
	}
	if len(fields) == 0 {
		return 0, 0, nil, false, errf(CodeBadFrame, "traced frame without a trace-ID field")
	}
	v, ok := uvarintOf(fields[0])
	if !ok {
		return 0, 0, nil, false, errf(CodeBadFrame, "malformed trace-ID field")
	}
	return op &^ TraceFlag, v, fields[1:], true, nil
}

// Code classifies a remote failure, mirroring the local error taxonomy of
// the stores (iofault.IOError, intrinsic.CorruptError, the intrinsic
// binding errors). Codes are wire format: values are stable.
type Code byte

const (
	// CodeBadFrame: the frame itself was malformed (bad length prefix,
	// truncated payload, empty frame). The connection is closed after it.
	CodeBadFrame Code = 1 + iota
	// CodeTooLarge: a length claim exceeded the frame limit.
	CodeTooLarge
	// CodeUnknownOp: the opcode is not in the protocol.
	CodeUnknownOp
	// CodeBadRequest: the frame was well-formed but a field was not (bad
	// image, wrong field count).
	CodeBadRequest
	// CodeNoRoot: no handle with the requested name.
	CodeNoRoot
	// CodeNotConforming: the value does not conform to its declared type.
	CodeNotConforming
	// CodeInconsistent: stored and requested types are inconsistent, or
	// migration would be required (the schema-evolution failures).
	CodeInconsistent
	// CodeTxn: a transaction-state error (COMMIT without BEGIN, nested
	// BEGIN).
	CodeTxn
	// CodeIO: the store failed an I/O operation; unwraps to
	// iofault.ErrIOFailed.
	CodeIO
	// CodeCorrupt: the store detected log corruption.
	CodeCorrupt
	// CodeShutdown: the server is draining and refused the request.
	CodeShutdown
	// CodeInternal: an unclassified server-side failure.
	CodeInternal
	// CodeOverloaded: admission control shed the request — the in-flight
	// cap was reached. The error carries a retry-after hint; the request
	// was not executed and is safe to retry.
	CodeOverloaded
	// CodeDegraded: the server's write path is poisoned (a failed commit
	// could not be rolled back) and it is running in degraded read-only
	// mode; reads and HEALTH keep working until the process restarts.
	CodeDegraded
	// CodeReadOnly: the server is a replication follower and permanently
	// refuses writes; the message names the primary to send them to.
	// Unlike CodeOverloaded this is never retryable against this server —
	// a follower does not become writable by waiting.
	CodeReadOnly
	// CodeFenced: this server was the primary but observed a higher
	// promotion epoch — another node was promoted over it — and now
	// refuses writes so the forked histories can never both be
	// acknowledged. The message names the new primary. Never retryable
	// against this server, but the client's failover logic re-probes the
	// replica set and re-pins writes at the new primary.
	CodeFenced
)

// lastCode is the highest assigned code. The exhaustiveness test walks
// [CodeBadFrame, lastCode]; update it when appending a code.
const lastCode = CodeFenced

// Per-code sentinels; a *WireError unwraps to the sentinel of its code so
// clients dispatch with errors.Is.
var (
	ErrBadFrame      = errors.New("wire: malformed frame")
	ErrTooLarge      = errors.New("wire: frame exceeds size limit")
	ErrUnknownOp     = errors.New("wire: unknown opcode")
	ErrBadRequest    = errors.New("wire: malformed request")
	ErrNoRoot        = errors.New("wire: no such root")
	ErrNotConforming = errors.New("wire: value does not conform to declared type")
	ErrInconsistent  = errors.New("wire: types are inconsistent")
	ErrTxn           = errors.New("wire: transaction state error")
	ErrRemoteIO      = errors.New("wire: remote i/o failure")
	ErrRemoteCorrupt = errors.New("wire: remote store corrupt")
	ErrShutdown      = errors.New("wire: server shutting down")
	ErrInternal      = errors.New("wire: internal server error")
	ErrOverloaded    = errors.New("wire: server overloaded")
	ErrDegraded      = errors.New("wire: server degraded to read-only")
	ErrReadOnly      = errors.New("wire: server is a read-only replication follower")
	ErrFenced        = errors.New("wire: server is fenced: a higher promotion epoch exists")
)

// String names the code.
func (c Code) String() string {
	switch c {
	case CodeBadFrame:
		return "bad-frame"
	case CodeTooLarge:
		return "too-large"
	case CodeUnknownOp:
		return "unknown-op"
	case CodeBadRequest:
		return "bad-request"
	case CodeNoRoot:
		return "no-root"
	case CodeNotConforming:
		return "not-conforming"
	case CodeInconsistent:
		return "inconsistent"
	case CodeTxn:
		return "txn"
	case CodeIO:
		return "io"
	case CodeCorrupt:
		return "corrupt"
	case CodeShutdown:
		return "shutdown"
	case CodeInternal:
		return "internal"
	case CodeOverloaded:
		return "overloaded"
	case CodeDegraded:
		return "degraded"
	case CodeReadOnly:
		return "read-only"
	case CodeFenced:
		return "fenced"
	default:
		return fmt.Sprintf("code(%d)", byte(c))
	}
}

// Sentinel returns the errors.Is target for the code.
func (c Code) Sentinel() error {
	switch c {
	case CodeBadFrame:
		return ErrBadFrame
	case CodeTooLarge:
		return ErrTooLarge
	case CodeUnknownOp:
		return ErrUnknownOp
	case CodeBadRequest:
		return ErrBadRequest
	case CodeNoRoot:
		return ErrNoRoot
	case CodeNotConforming:
		return ErrNotConforming
	case CodeInconsistent:
		return ErrInconsistent
	case CodeTxn:
		return ErrTxn
	case CodeIO:
		return ErrRemoteIO
	case CodeCorrupt:
		return ErrRemoteCorrupt
	case CodeShutdown:
		return ErrShutdown
	case CodeOverloaded:
		return ErrOverloaded
	case CodeDegraded:
		return ErrDegraded
	case CodeReadOnly:
		return ErrReadOnly
	case CodeFenced:
		return ErrFenced
	default:
		return ErrInternal
	}
}

// WireError is a protocol-level failure: which class, and the peer's (or
// decoder's) diagnostic message. RetryAfter, when positive, is the
// server's backoff hint — how long the peer should wait before retrying
// (carried on CodeOverloaded refusals).
type WireError struct {
	Code       Code
	Msg        string
	RetryAfter time.Duration
}

func (e *WireError) Error() string {
	if e.Msg == "" {
		return fmt.Sprintf("wire: %s", e.Code)
	}
	return fmt.Sprintf("wire: %s: %s", e.Code, e.Msg)
}

// Unwrap exposes the per-code sentinel; CodeIO failures additionally
// unwrap to iofault.ErrIOFailed, keeping remote store failures in the
// same taxonomy as local ones.
func (e *WireError) Unwrap() []error {
	if e.Code == CodeIO {
		return []error{e.Code.Sentinel(), iofault.ErrIOFailed}
	}
	return []error{e.Code.Sentinel()}
}

// errf builds a *WireError.
func errf(c Code, format string, args ...any) *WireError {
	return &WireError{Code: c, Msg: fmt.Sprintf(format, args...)}
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

// AppendFrame appends the encoded frame to dst and returns it, or an error
// if the frame would exceed max (<= 0 means MaxFrame).
func AppendFrame(dst []byte, max int, op byte, fields ...[]byte) ([]byte, error) {
	if max <= 0 {
		max = MaxFrame
	}
	n := 1
	var lenBuf [binary.MaxVarintLen64]byte
	for _, f := range fields {
		n += binary.PutUvarint(lenBuf[:], uint64(len(f))) + len(f)
	}
	if n > max {
		return dst, errf(CodeTooLarge, "frame payload %d exceeds limit %d", n, max)
	}
	var hdr [headerLen]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(n))
	dst = append(dst, hdr[:]...)
	dst = append(dst, op)
	for _, f := range fields {
		k := binary.PutUvarint(lenBuf[:], uint64(len(f)))
		dst = append(dst, lenBuf[:k]...)
		dst = append(dst, f...)
	}
	return dst, nil
}

// AppendTracedFrame appends a whole traced frame — flag bit set,
// leading trace-ID field, then fields — to dst in one pass, byte-
// identical to AppendFrame over AppendTrace's output but without the
// [][]byte prepend and the trace-field allocation. This is the client's
// hot request-stamping path: with a reused dst buffer a traced frame
// encodes with zero allocations (E15 measured +7 allocs/op from the
// AppendTrace route).
func AppendTracedFrame(dst []byte, max int, op byte, trace uint64, fields ...[]byte) ([]byte, error) {
	if max <= 0 {
		max = MaxFrame
	}
	var traceBuf [binary.MaxVarintLen64]byte
	tn := binary.PutUvarint(traceBuf[:], trace)
	var lenBuf [binary.MaxVarintLen64]byte
	n := 1 + binary.PutUvarint(lenBuf[:], uint64(tn)) + tn
	for _, f := range fields {
		n += binary.PutUvarint(lenBuf[:], uint64(len(f))) + len(f)
	}
	if n > max {
		return dst, errf(CodeTooLarge, "frame payload %d exceeds limit %d", n, max)
	}
	var hdr [headerLen]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(n))
	dst = append(dst, hdr[:]...)
	dst = append(dst, op|TraceFlag)
	k := binary.PutUvarint(lenBuf[:], uint64(tn))
	dst = append(dst, lenBuf[:k]...)
	dst = append(dst, traceBuf[:tn]...)
	for _, f := range fields {
		k := binary.PutUvarint(lenBuf[:], uint64(len(f)))
		dst = append(dst, lenBuf[:k]...)
		dst = append(dst, f...)
	}
	return dst, nil
}

// WriteFrame writes one frame in a single Write call (so concurrent
// writers serialized by a mutex never interleave partial frames).
func WriteFrame(w io.Writer, max int, op byte, fields ...[]byte) error {
	buf, err := AppendFrame(nil, max, op, fields...)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// ReadFrame reads one frame. max bounds the payload (<= 0 means MaxFrame);
// an oversize claim fails before any allocation. Errors reading the 4-byte
// header are returned raw (io.EOF at a frame boundary is a clean close);
// everything after the header that goes wrong is a *WireError.
func ReadFrame(r io.Reader, max int) (op byte, fields [][]byte, err error) {
	if max <= 0 {
		max = MaxFrame
	}
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 {
		return 0, nil, errf(CodeBadFrame, "empty frame")
	}
	if n > uint32(max) {
		return 0, nil, errf(CodeTooLarge, "frame payload %d exceeds limit %d", n, max)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, errf(CodeBadFrame, "truncated frame: %v", err)
	}
	fields, err = SplitFields(payload[1:])
	if err != nil {
		return 0, nil, err
	}
	return payload[0], fields, nil
}

// SplitFields parses the field sequence of a frame payload. The returned
// slices alias b.
func SplitFields(b []byte) ([][]byte, error) {
	var out [][]byte
	for len(b) > 0 {
		n, k := binary.Uvarint(b)
		if k <= 0 {
			return nil, errf(CodeBadFrame, "bad field length prefix")
		}
		if n > uint64(len(b)-k) {
			return nil, errf(CodeBadFrame, "field length %d exceeds remaining %d", n, len(b)-k)
		}
		out = append(out, b[k:k+int(n)])
		b = b[k+int(n):]
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Field images (persist/codec reuse)
// ---------------------------------------------------------------------------

// MarshalType encodes a type as a self-contained codec image field.
func MarshalType(t types.Type) ([]byte, error) {
	var buf bytes.Buffer
	e := codec.NewEncoder(&buf)
	if err := e.Type(t); err != nil {
		return nil, err
	}
	if err := e.Flush(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// UnmarshalType decodes a type image field.
func UnmarshalType(b []byte) (types.Type, error) {
	d, err := codec.NewDecoder(bytes.NewReader(b))
	if err != nil {
		return nil, err
	}
	return d.Type()
}

// ErrorFields encodes an OpError payload: [code, message] plus a
// retry-after hint field (uvarint nanoseconds) when the error carries
// one.
func ErrorFields(e *WireError) [][]byte {
	fields := [][]byte{{byte(e.Code)}, []byte(e.Msg)}
	if e.RetryAfter > 0 {
		fields = append(fields, uvarintField(uint64(e.RetryAfter)))
	}
	return fields
}

// DecodeError reconstructs the *WireError from an OpError payload. A
// malformed error payload is itself a protocol error; a malformed
// retry-after hint is dropped rather than trusted.
func DecodeError(fields [][]byte) error {
	if len(fields) < 2 || len(fields[0]) != 1 {
		return errf(CodeBadFrame, "malformed error response")
	}
	we := &WireError{Code: Code(fields[0][0]), Msg: string(fields[1])}
	if len(fields) >= 3 {
		if v, ok := uvarintOf(fields[2]); ok {
			we.RetryAfter = time.Duration(v)
		}
	}
	return we
}

// ---------------------------------------------------------------------------
// Health (the HEALTH opcode)
// ---------------------------------------------------------------------------

// Role is a server's replication role as reported by HEALTH: the writable
// primary, a read-only follower, or a fenced old primary that observed a
// higher promotion epoch. Wire format: values are stable.
type Role byte

const (
	RolePrimary Role = iota
	RoleFollower
	RoleFenced
)

func (r Role) String() string {
	switch r {
	case RolePrimary:
		return "primary"
	case RoleFollower:
		return "follower"
	case RoleFenced:
		return "fenced"
	default:
		return fmt.Sprintf("role(%d)", byte(r))
	}
}

// Health is the server's self-report: whether the write path is poisoned
// (degraded read-only mode), whether it is a read-only replication
// follower, how much work is in flight, how many sessions are connected,
// the committed root count, the uptime, and the store's durable log
// offset. It is the payload of the HEALTH opcode's OK response, and the
// one request a server answers even while shedding load — a monitor must
// be able to ask "are you overloaded?" of an overloaded server.
type Health struct {
	Poisoned bool
	// ReadOnly reports that writes are refused by role: a replication
	// follower (CodeReadOnly) or a fenced old primary (CodeFenced).
	ReadOnly bool
	InFlight int
	Sessions int
	Roots    int
	Uptime   time.Duration
	// DurableEnd is the byte offset just past the store's last durable
	// commit group. On a follower it is the applied replication offset, so
	// primary.DurableEnd - follower.DurableEnd is the replication lag in
	// log bytes — observable from HEALTH alone, no STATS needed.
	DurableEnd int64
	// AckedEnd is the acknowledged-end watermark: the log offset up to
	// which writes have been acknowledged. Equal to DurableEnd except
	// under Durability=async, where AckedEnd - DurableEnd is the
	// acked-but-not-yet-durable window a crash would lose.
	AckedEnd int64
	// Role is the replication role; failover clients probe HEALTH for the
	// highest-epoch node reporting RolePrimary.
	Role Role
	// Epoch is the store's promotion epoch: bumped durably by every
	// PROMOTE, 0 for a log never promoted. Higher epoch wins a failover.
	Epoch uint64
}

// HealthFields encodes the HEALTH response payload.
func HealthFields(h Health) [][]byte {
	var flags byte
	if h.Poisoned {
		flags |= 1
	}
	if h.ReadOnly {
		flags |= 2
	}
	return [][]byte{
		{flags},
		uvarintField(uint64(h.InFlight)),
		uvarintField(uint64(h.Sessions)),
		uvarintField(uint64(h.Roots)),
		uvarintField(uint64(h.Uptime)),
		uvarintField(uint64(h.DurableEnd)),
		uvarintField(uint64(h.AckedEnd)),
		{byte(h.Role)},
		uvarintField(h.Epoch),
	}
}

// DecodeHealth reconstructs the Health from a HEALTH response payload.
// Shorter payloads from older servers are accepted for compatibility: six
// fields (a pre-group-commit server, no AckedEnd) imply
// AckedEnd = DurableEnd, and seven fields (a pre-failover server, no
// role/epoch) imply Epoch 0 with the role derived from the ReadOnly flag.
func DecodeHealth(fields [][]byte) (Health, error) {
	if (len(fields) != 6 && len(fields) != 7 && len(fields) != 9) || len(fields[0]) != 1 {
		return Health{}, errf(CodeBadFrame, "malformed HEALTH response")
	}
	var u [6]uint64
	for i, f := range fields[1:] {
		if i >= len(u) {
			break
		}
		v, ok := uvarintOf(f)
		if !ok {
			return Health{}, errf(CodeBadFrame, "malformed HEALTH field %d", i+1)
		}
		u[i] = v
	}
	h := Health{
		Poisoned:   fields[0][0]&1 != 0,
		ReadOnly:   fields[0][0]&2 != 0,
		InFlight:   int(u[0]),
		Sessions:   int(u[1]),
		Roots:      int(u[2]),
		Uptime:     time.Duration(u[3]),
		DurableEnd: int64(u[4]),
		AckedEnd:   int64(u[4]),
	}
	if len(fields) >= 7 {
		h.AckedEnd = int64(u[5])
	}
	if len(fields) == 9 {
		if len(fields[7]) != 1 {
			return Health{}, errf(CodeBadFrame, "malformed HEALTH role field")
		}
		h.Role = Role(fields[7][0])
		v, ok := uvarintOf(fields[8])
		if !ok {
			return Health{}, errf(CodeBadFrame, "malformed HEALTH epoch field")
		}
		h.Epoch = v
	} else if h.ReadOnly {
		h.Role = RoleFollower
	}
	return h, nil
}

// ---------------------------------------------------------------------------
// Replication frames (the REPLICATE opcode and its stream)
// ---------------------------------------------------------------------------

// replCRCTable is the Castagnoli polynomial — the same CRC-32C the
// intrinsic log uses for its commit groups, so one hardware-accelerated
// checksum family covers disk and wire.
var replCRCTable = crc32.MakeTable(crc32.Castagnoli)

// ReplicateFields encodes the REPLICATE request: stream my log from this
// durable offset. The second field is the subscriber's promotion epoch —
// a primary seeing a subscriber at a higher epoch than its own has been
// superseded and must fence itself.
func ReplicateFields(from int64, epoch uint64) [][]byte {
	return [][]byte{uvarintField(uint64(from)), uvarintField(epoch)}
}

// DecodeReplicateReq decodes the REPLICATE request payload, returning the
// offset and the subscriber's epoch (0 when the pre-failover single-field
// form is received). An offset that does not fit an int64 is as malformed
// as a truncated one.
func DecodeReplicateReq(fields [][]byte) (int64, uint64, error) {
	if len(fields) != 1 && len(fields) != 2 {
		return 0, 0, errf(CodeBadRequest, "REPLICATE wants 1 or 2 fields, got %d", len(fields))
	}
	v, ok := uvarintOf(fields[0])
	if !ok {
		return 0, 0, errf(CodeBadRequest, "malformed REPLICATE offset")
	}
	if v > math.MaxInt64 {
		return 0, 0, errf(CodeBadRequest, "REPLICATE offset %d overflows", v)
	}
	var epoch uint64
	if len(fields) == 2 {
		epoch, ok = uvarintOf(fields[1])
		if !ok {
			return 0, 0, errf(CodeBadRequest, "malformed REPLICATE epoch")
		}
	}
	return int64(v), epoch, nil
}

// ReplDataFields encodes one REPDATA stream frame: whole commit groups as
// raw log bytes starting at offset start, the primary's promotion epoch,
// and the CRC-32C trailer covering the offset field, the raw bytes, and
// the epoch field — so a flipped bit anywhere (including in the epoch a
// follower fences on) is detected before the follower acts on the frame.
func ReplDataFields(start int64, raw []byte, epoch uint64) [][]byte {
	off := uvarintField(uint64(start))
	ep := uvarintField(epoch)
	sum := crc32.Update(crc32.Update(crc32.Update(0, replCRCTable, off), replCRCTable, raw), replCRCTable, ep)
	var tr [4]byte
	binary.LittleEndian.PutUint32(tr[:], sum)
	return [][]byte{off, raw, ep, tr[:]}
}

// ReplDataTraceFields is the trace-carrying REPDATA form: the four
// fields of ReplDataFields plus the trace ID of the commit that produced
// the chunk's last group and the primary's wall clock (unix nanos) at
// that commit's publication. A follower links its apply span to the
// primary's trace and measures commit-to-visible delay from commitNS.
// The CRC trailer covers all five preceding fields.
func ReplDataTraceFields(start int64, raw []byte, epoch, traceID uint64, commitNS int64) [][]byte {
	off := uvarintField(uint64(start))
	ep := uvarintField(epoch)
	tr := uvarintField(traceID)
	ns := uvarintField(uint64(commitNS))
	sum := crc32.Update(crc32.Update(crc32.Update(0, replCRCTable, off), replCRCTable, raw), replCRCTable, ep)
	sum = crc32.Update(crc32.Update(sum, replCRCTable, tr), replCRCTable, ns)
	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], sum)
	return [][]byte{off, raw, ep, tr, ns, trailer[:]}
}

// ReplData is a verified, decoded REPDATA frame. Epoch is 0 for the
// pre-failover three-field form; Trace and CommitNS are 0 for both
// pre-trace forms.
type ReplData struct {
	Start    int64  // log offset the raw bytes start at
	Raw      []byte // whole commit groups, verbatim log bytes
	Epoch    uint64 // primary's promotion epoch
	Trace    uint64 // trace ID of the commit producing the chunk's last group
	CommitNS int64  // primary wall clock at that commit's publication
}

// DecodeReplData verifies and decodes a REPDATA frame in any of its
// three generations: [off, raw, crc] (CRC over off+raw),
// [off, raw, epoch, crc], or the trace-carrying six-field form. A
// checksum mismatch is CodeCorrupt — the follower must drop the
// connection and resubscribe from its durable offset rather than apply
// the bytes; any other malformation is CodeBadFrame. Never panics
// (FuzzReadFrame feeds this).
func DecodeReplData(fields [][]byte) (ReplData, error) {
	n := len(fields)
	if (n != 3 && n != 4 && n != 6) || len(fields[n-1]) != 4 {
		return ReplData{}, errf(CodeBadFrame, "malformed REPDATA frame")
	}
	v, ok := uvarintOf(fields[0])
	if !ok || v > math.MaxInt64 {
		return ReplData{}, errf(CodeBadFrame, "malformed REPDATA offset")
	}
	d := ReplData{Start: int64(v), Raw: fields[1]}
	sum := crc32.Update(crc32.Update(0, replCRCTable, fields[0]), replCRCTable, fields[1])
	if n >= 4 {
		d.Epoch, ok = uvarintOf(fields[2])
		if !ok {
			return ReplData{}, errf(CodeBadFrame, "malformed REPDATA epoch")
		}
		sum = crc32.Update(sum, replCRCTable, fields[2])
	}
	if n == 6 {
		d.Trace, ok = uvarintOf(fields[3])
		if !ok {
			return ReplData{}, errf(CodeBadFrame, "malformed REPDATA trace")
		}
		ns, ok := uvarintOf(fields[4])
		if !ok || ns > math.MaxInt64 {
			return ReplData{}, errf(CodeBadFrame, "malformed REPDATA commit time")
		}
		d.CommitNS = int64(ns)
		sum = crc32.Update(crc32.Update(sum, replCRCTable, fields[3]), replCRCTable, fields[4])
	}
	if got := binary.LittleEndian.Uint32(fields[n-1]); got != sum {
		return ReplData{}, errf(CodeCorrupt,
			"REPDATA checksum mismatch (stored %08x, computed %08x)", got, sum)
	}
	return d, nil
}

// HeartbeatFields encodes a REPHEARTBEAT frame: the primary's durable end
// and its promotion epoch.
func HeartbeatFields(end int64, epoch uint64) [][]byte {
	return [][]byte{uvarintField(uint64(end)), uvarintField(epoch)}
}

// DecodeHeartbeat decodes a REPHEARTBEAT frame, returning the primary's
// durable end and its epoch (0 for the pre-failover single-field form).
func DecodeHeartbeat(fields [][]byte) (int64, uint64, error) {
	if len(fields) != 1 && len(fields) != 2 {
		return 0, 0, errf(CodeBadFrame, "malformed REPHEARTBEAT frame")
	}
	v, ok := uvarintOf(fields[0])
	if !ok || v > math.MaxInt64 {
		return 0, 0, errf(CodeBadFrame, "malformed REPHEARTBEAT offset")
	}
	var epoch uint64
	if len(fields) == 2 {
		epoch, ok = uvarintOf(fields[1])
		if !ok {
			return 0, 0, errf(CodeBadFrame, "malformed REPHEARTBEAT epoch")
		}
	}
	return int64(v), epoch, nil
}

// FenceFields encodes the fence-notification form of a PROMOTE request:
// the sender's (higher) promotion epoch and the address writers should be
// referred to.
func FenceFields(epoch uint64, newPrimary string) [][]byte {
	return [][]byte{uvarintField(epoch), []byte(newPrimary)}
}

// DecodePromote decodes a PROMOTE request. No fields is the self-promote
// order (fence == false); [epoch, newPrimaryAddr] is the fence
// notification (fence == true).
func DecodePromote(fields [][]byte) (epoch uint64, newPrimary string, fence bool, err error) {
	switch len(fields) {
	case 0:
		return 0, "", false, nil
	case 2:
		v, ok := uvarintOf(fields[0])
		if !ok {
			return 0, "", false, errf(CodeBadRequest, "malformed PROMOTE epoch")
		}
		return v, string(fields[1]), true, nil
	default:
		return 0, "", false, errf(CodeBadRequest, "PROMOTE wants 0 or 2 fields, got %d", len(fields))
	}
}

// UvarintField encodes v as a standalone uvarint field (trace IDs,
// hints, gauge values).
func UvarintField(v uint64) []byte {
	var b [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(b[:], v)
	return b[:n]
}

// uvarintField is the historical private spelling.
func uvarintField(v uint64) []byte { return UvarintField(v) }

// uvarintOf decodes a field that must be exactly one uvarint.
func uvarintOf(f []byte) (uint64, bool) {
	v, k := binary.Uvarint(f)
	return v, k > 0 && k == len(f)
}
