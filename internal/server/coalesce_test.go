// End-to-end group-commit tests: concurrent writers racing through the
// wire protocol against a coalescing server. The commit-tests make target
// runs this file under -race; the stress test is the satellite that
// proves the coalescer under real client concurrency, not just the
// white-box batches.
package server_test

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"dbpl/client"
	"dbpl/internal/persist/intrinsic"
	"dbpl/internal/server"
	"dbpl/internal/server/netfault"
	"dbpl/internal/telemetry"
	"dbpl/internal/value"
)

// TestGroupCommitRaceStress races PUT, DELETE and multi-op transactions
// from many goroutines against a Durability=group server, recording
// exactly what was acknowledged, then reopens the log and checks the
// whole acknowledgement contract at once: every acked write is durable
// with its exact value, every acked delete stayed deleted, and the
// coalescer actually shared fsyncs (the batch metrics are non-trivial).
func TestGroupCommitRaceStress(t *testing.T) {
	path := filepath.Join(t.TempDir(), "stress.log")
	reg := telemetry.NewRegistry()
	// A small linger makes coalescing deterministic: on a fast disk the
	// shared fsync can finish before the next writer's frame is even
	// parsed, and a zero-delay committer then sees batches of one — the
	// assertion below would flake with the machine's load.
	h := bootCfg(t, path, nil, server.Config{
		Durability:    server.DurGroup,
		GroupMaxDelay: 2 * time.Millisecond,
		Registry:      reg,
	})

	const (
		writers = 8
		rounds  = 30
	)
	// ground truth per goroutine: root -> last acked value, or -1 for an
	// acked delete. Namespaces are disjoint (g<i>-r<j>) so no cross-writer
	// coordination is needed to know the expected final state.
	truth := make([]map[string]int64, writers)
	errs := make([]error, writers)
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		g := g
		truth[g] = make(map[string]int64)
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := client.Dial(h.addr, &client.Options{PoolSize: 1})
			if err != nil {
				errs[g] = err
				return
			}
			defer c.Close()
			rng := rand.New(rand.NewSource(int64(g) * 7919))
			for r := 0; r < rounds; r++ {
				name := fmt.Sprintf("g%d-r%d", g, rng.Intn(8))
				switch rng.Intn(4) {
				case 0: // delete whatever the name holds
					if _, err := c.Delete(name); err != nil {
						errs[g] = fmt.Errorf("round %d delete %s: %w", r, name, err)
						return
					}
					truth[g][name] = -1
				case 1: // multi-op transaction: two roots commit atomically
					sess, err := c.Begin()
					if err != nil {
						errs[g] = fmt.Errorf("round %d begin: %w", r, err)
						return
					}
					other := fmt.Sprintf("g%d-r%d", g, rng.Intn(8))
					v1, v2 := int64(r*2), int64(r*2+1)
					if err := sess.Put(name, value.Int(v1), nil); err == nil {
						err = sess.Put(other, value.Int(v2), nil)
						if err == nil {
							err = sess.Commit()
						}
					}
					if err != nil {
						errs[g] = fmt.Errorf("round %d txn: %w", r, err)
						return
					}
					truth[g][name] = v1
					truth[g][other] = v2
				default: // plain put
					v := int64(r)
					if err := c.Put(name, value.Int(v), nil); err != nil {
						errs[g] = fmt.Errorf("round %d put %s: %w", r, name, err)
						return
					}
					truth[g][name] = v
				}
			}
		}()
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", g, err)
		}
	}

	// The coalescer must have formed at least one multi-group batch under
	// this much concurrency: commits outnumber fsyncs.
	snap := reg.Snapshot()
	saved, _ := snap.Counter("dbpl_commit_fsyncs_saved_total")
	commits, _ := snap.Counter("dbpl_server_commits_total")
	if saved == 0 {
		t.Errorf("dbpl_commit_fsyncs_saved_total = 0 after %d concurrent writers x %d rounds: nothing coalesced", writers, rounds)
	}
	t.Logf("stress: %d commits, %d fsyncs saved", commits, saved)

	h.stop()
	fresh, err := intrinsic.Open(path)
	if err != nil {
		t.Fatalf("reopen after stress: %v", err)
	}
	defer fresh.Close()
	for g := 0; g < writers; g++ {
		for name, want := range truth[g] {
			r, ok := fresh.Root(name)
			if want == -1 {
				if ok {
					t.Errorf("root %q bound after an acknowledged delete", name)
				}
				continue
			}
			if !ok {
				t.Errorf("acknowledged root %q lost", name)
				continue
			}
			if !value.Equal(r.Value, value.Int(want)) {
				t.Errorf("root %q = %v, want %d", name, r.Value, want)
			}
		}
	}
}

// TestGroupCommitChaosRetries is the chaos resets test pointed at a
// coalescing server: one-shot connection resets force client retries
// whose idempotency keys cross batch boundaries, and the dedup must still
// apply each acked write exactly once. Reopen verifies values.
func TestGroupCommitChaosRetries(t *testing.T) {
	path := filepath.Join(t.TempDir(), "chaos-group.log")
	h := bootCfg(t, path, nil, server.Config{
		Durability:    server.DurGroup,
		GroupMaxDelay: 2 * time.Millisecond,
	})
	p, c := proxied(t, h, &client.Options{
		RetryPolicy: client.RetryPolicy{MaxAttempts: 8, Budget: -1},
	})

	const n = 40
	acked := make(map[string]int64)
	for i := 0; i < n; i++ {
		switch i % 5 {
		case 1:
			p.ResetAfter(netfault.ClientToServer, 0) // kill the request
		case 3:
			p.ResetAfter(netfault.ServerToClient, 0) // kill the ack: retry re-sends an applied write
		}
		name := fmt.Sprintf("k%03d", i)
		if err := c.Put(name, value.Int(int64(i)), nil); err == nil {
			acked[name] = int64(i)
		}
	}
	if len(acked) < n/2 {
		t.Fatalf("only %d/%d puts acknowledged through the retries", len(acked), n)
	}

	p.Close()
	h.stop()
	fresh, err := intrinsic.Open(path)
	if err != nil {
		t.Fatalf("reopen after chaos: %v", err)
	}
	defer fresh.Close()
	for name, want := range acked {
		r, ok := fresh.Root(name)
		if !ok {
			t.Errorf("acknowledged root %q lost", name)
			continue
		}
		if !value.Equal(r.Value, value.Int(want)) {
			t.Errorf("root %q = %v, want %d", name, r.Value, want)
		}
	}
}
