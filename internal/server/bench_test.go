package server_test

import (
	"context"
	"fmt"
	"net"
	"path/filepath"
	"sync"
	"testing"

	"dbpl/client"
	"dbpl/internal/persist/intrinsic"
	"dbpl/internal/server"
	"dbpl/internal/types"
	"dbpl/internal/value"
)

// BenchmarkServeGet measures the full remote GET round trip — client
// encode, TCP, server-side lock-free extent extraction, response framing,
// client decode — over a 512-root store at three selectivities: the query
// type matches all roots, a tagged 1/8 subset, or none (E13 in
// EXPERIMENTS.md). Parallel variants multiplex pipelined clients over the
// loopback.
func BenchmarkServeGet(b *testing.B) {
	const nRoots = 512
	baseT := types.MustParse("{Name: String, Empno: Int}")
	taggedT := types.MustParse("{Name: String, Empno: Int, Tag: Bool}")
	missT := types.MustParse("{Nonesuch: Int}")

	st, err := intrinsic.Open(filepath.Join(b.TempDir(), "bench.log"))
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	for i := 0; i < nRoots; i++ {
		name := fmt.Sprintf("r%04d", i)
		var v value.Value
		var t types.Type
		if i%8 == 0 { // the 1/8 selectivity tier
			v = value.Rec("Name", value.String(name), "Empno", value.Int(int64(i)), "Tag", value.Bool(true))
			t = taggedT
		} else {
			v = value.Rec("Name", value.String(name), "Empno", value.Int(int64(i)))
			t = baseT
		}
		if err := st.Bind(name, v, t); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := st.Commit(); err != nil {
		b.Fatal(err)
	}

	srv, err := server.New(st, server.Config{})
	if err != nil {
		b.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve(ln)
	addr := ln.Addr().String()

	cases := []struct {
		name string
		t    types.Type
		want int
	}{
		{"all-512", baseT, nRoots},
		{"tagged-64", taggedT, nRoots / 8},
		{"miss-0", missT, 0},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			c, err := client.Dial(addr, &client.Options{PoolSize: 1})
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ps, err := c.Get(tc.t)
				if err != nil {
					b.Fatal(err)
				}
				if len(ps) != tc.want {
					b.Fatalf("got %d, want %d", len(ps), tc.want)
				}
			}
		})
		b.Run(tc.name+"-parallel", func(b *testing.B) {
			c, err := client.Dial(addr, &client.Options{PoolSize: 4})
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					ps, err := c.Get(tc.t)
					if err != nil {
						b.Fatal(err)
					}
					if len(ps) != tc.want {
						b.Fatalf("got %d, want %d", len(ps), tc.want)
					}
				}
			})
		})
	}
}

// BenchmarkServePut measures the autocommitting remote PUT round trip —
// the write path the resilience layer touches twice per request: the
// admission gate (one atomic add/sub) and the idempotency-key lookup +
// record inside the commit (E14 in EXPERIMENTS.md). The dedup-off
// variant isolates the key machinery's cost by disabling the cache.
// BenchmarkServePutConcurrency measures aggregate autocommitting PUT
// throughput as the writer count grows, per durability mode (E18 in
// EXPERIMENTS.md). Under per-commit every writer pays a private fsync so
// the aggregate flatlines; under group concurrent commits share one
// fsync and throughput scales with the batch; async acks before it.
func BenchmarkServePutConcurrency(b *testing.B) {
	rec := value.Rec("Name", value.String("bench"), "Empno", value.Int(1))
	recT := types.MustParse("{Name: String, Empno: Int}")

	for _, mode := range []server.Durability{server.DurPerCommit, server.DurGroup, server.DurAsync} {
		for _, writers := range []int{1, 4, 8} {
			b.Run(fmt.Sprintf("%s/writers-%d", mode, writers), func(b *testing.B) {
				st, err := intrinsic.Open(filepath.Join(b.TempDir(), "bench-e18.log"))
				if err != nil {
					b.Fatal(err)
				}
				defer st.Close()
				srv, err := server.New(st, server.Config{Durability: mode})
				if err != nil {
					b.Fatal(err)
				}
				ln, err := net.Listen("tcp", "127.0.0.1:0")
				if err != nil {
					b.Fatal(err)
				}
				go srv.Serve(ln)
				defer srv.Shutdown(context.Background())
				addr := ln.Addr().String()

				clients := make([]*client.Client, writers)
				for w := range clients {
					if clients[w], err = client.Dial(addr, &client.Options{PoolSize: 1}); err != nil {
						b.Fatal(err)
					}
					defer clients[w].Close()
				}
				b.ResetTimer()
				var wg sync.WaitGroup
				for w := 0; w < writers; w++ {
					w := w
					n := b.N / writers
					if w < b.N%writers {
						n++
					}
					wg.Add(1)
					go func() {
						defer wg.Done()
						name := fmt.Sprintf("w%d", w)
						for i := 0; i < n; i++ {
							if err := clients[w].Put(name, rec, recT); err != nil {
								b.Error(err)
								return
							}
						}
					}()
				}
				wg.Wait()
			})
		}
	}
}

func BenchmarkServePut(b *testing.B) {
	rec := value.Rec("Name", value.String("bench"), "Empno", value.Int(1))
	recT := types.MustParse("{Name: String, Empno: Int}")

	for _, tc := range []struct {
		name string
		cfg  server.Config
	}{
		{"dedup-on", server.Config{}},
		{"dedup-off", server.Config{IdemCacheSize: -1}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			st, err := intrinsic.Open(filepath.Join(b.TempDir(), "bench-put.log"))
			if err != nil {
				b.Fatal(err)
			}
			defer st.Close()
			srv, err := server.New(st, tc.cfg)
			if err != nil {
				b.Fatal(err)
			}
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			go srv.Serve(ln)
			c, err := client.Dial(ln.Addr().String(), &client.Options{PoolSize: 1})
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.Put("k", rec, recT); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
