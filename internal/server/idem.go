package server

import "container/list"

// idemCache is the bounded LRU of *applied* write ids: idempotency key →
// the per-op existed results the commit group produced. A write is
// recorded only after its commit group is durable, so a dedup hit means
// "this exact group is already on disk" and the retried frame must be
// acknowledged with the original result rather than applied again — the
// exactly-once half of the client's retry contract. Failed commits are
// deliberately not recorded: their retry must re-execute.
//
// The cache is guarded by Server.commitMu (lookups and inserts happen
// only inside the commit path), so it needs no lock of its own. The bound
// is a window, not a ledger: a retry arriving after the key has been
// evicted (capacity × intervening writes later) re-applies. The client's
// retry budget (seconds) is many orders of magnitude shorter than the
// time it takes realistic traffic to push a key through a 4096-entry
// window, and PUT/DELETE re-application is idempotent at the state level
// anyway — the window exists so DELETE's existed bit and the log's
// group count stay exact across the retries that can actually happen.
type idemCache struct {
	cap int
	ll  *list.List               // front = most recently applied
	m   map[string]*list.Element // key → element holding *idemEntry
}

type idemEntry struct {
	key     string
	existed []bool
}

func newIdemCache(capacity int) *idemCache {
	return &idemCache{cap: capacity, ll: list.New(), m: make(map[string]*list.Element, capacity)}
}

// get reports whether key was already applied, promoting it on a hit.
func (c *idemCache) get(key string) ([]bool, bool) {
	if c == nil {
		return nil, false
	}
	el, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*idemEntry).existed, true
}

// put records an applied write, evicting the least recently used entry
// past capacity.
func (c *idemCache) put(key string, existed []bool) {
	if c == nil {
		return
	}
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*idemEntry).existed = existed
		return
	}
	c.m[key] = c.ll.PushFront(&idemEntry{key: key, existed: existed})
	for c.ll.Len() > c.cap {
		el := c.ll.Back()
		c.ll.Remove(el)
		delete(c.m, el.Value.(*idemEntry).key)
	}
}

// len reports the number of recorded write ids (tests).
func (c *idemCache) len() int {
	if c == nil {
		return 0
	}
	return c.ll.Len()
}
