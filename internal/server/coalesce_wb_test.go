// White-box tests for the commit coalescer: batch failure semantics, the
// double-ack regression at the stage→ack boundary, exactly-once
// idempotency across and within batches, and the async acked-end
// watermark. These drive Server.commit directly (no network) so the
// injected faults land on deterministic I/O boundaries.
package server

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"dbpl/internal/dynamic"
	"dbpl/internal/persist/intrinsic"
	"dbpl/internal/persist/iofault"
	"dbpl/internal/server/wire"
	"dbpl/internal/value"
)

func putOp(name string, n int64) txnOp {
	return txnOp{name: name, dyn: dynamic.Make(value.Rec("Name", value.String(name), "N", value.Int(n)))}
}

// wbServer builds a server over fsys without a listener; commits are
// driven through s.commit directly. Cleanup shuts the committer down and
// closes the store (tolerating a poisoned final commit — several tests
// poison on purpose).
func wbServer(t *testing.T, fsys iofault.FS, path string, cfg Config) (*Server, *intrinsic.Store) {
	t.Helper()
	st, err := intrinsic.OpenFS(fsys, path)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(st, cfg)
	if err != nil {
		st.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		st.Close()
	})
	return srv, st
}

// groupCfg lingers generously so concurrent test writers coalesce into
// one batch deterministically.
func groupCfg() Config {
	return Config{Durability: DurGroup, GroupMaxDelay: 200 * time.Millisecond}
}

// TestCoalescerSharesFsync: K concurrent commits under DurGroup are
// promoted by fewer fsyncs than commits — the amortization itself — and
// every write is durable in the store afterwards.
func TestCoalescerSharesFsync(t *testing.T) {
	inj := iofault.NewInjector(iofault.OS{})
	srv, st := wbServer(t, inj, filepath.Join(t.TempDir(), "share.log"), groupCfg())

	const K = 8
	syncsBefore := inj.Count(iofault.OpSync)
	var wg sync.WaitGroup
	errs := make([]error, K)
	for i := 0; i < K; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, errs[i] = srv.commit([]txnOp{putOp(fmt.Sprintf("r%d", i), int64(i))}, "", nil)
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}
	syncs := inj.Count(iofault.OpSync) - syncsBefore
	if syncs >= K {
		t.Fatalf("%d commits used %d fsyncs; coalescing saved nothing", K, syncs)
	}
	if saved := srv.m.fsyncsSaved.Value(); saved == 0 {
		t.Fatal("dbpl_commit_fsyncs_saved_total = 0 after a coalesced batch")
	}
	for i := 0; i < K; i++ {
		if _, ok := st.Root(fmt.Sprintf("r%d", i)); !ok {
			t.Fatalf("r%d missing from the store after an acked group commit", i)
		}
	}
	if st.StagedGroups() != 0 {
		t.Fatalf("%d groups left staged after all acks", st.StagedGroups())
	}
}

// TestCoalescerBatchFsyncFailureFailsAllWaiters: an injected failure of
// the shared batch fsync must fail every waiter in the batch with the
// same typed cause (iofault.ErrInjected through the store's wrap), leave
// the published state and the log at the pre-batch boundary, and let the
// next commit proceed after rollback.
func TestCoalescerBatchFsyncFailureFailsAllWaiters(t *testing.T) {
	path := filepath.Join(t.TempDir(), "failall.log")
	inj := iofault.NewInjector(iofault.OS{})
	srv, st := wbServer(t, inj, path, groupCfg())
	if _, err := srv.commit([]txnOp{putOp("base", 0)}, "", nil); err != nil {
		t.Fatal(err)
	}
	durable := st.DurableEnd()

	// Fail the next K syncs: however the K commits split into batches,
	// every batch's shared fsync fails.
	const K = 6
	n := inj.Count(iofault.OpSync)
	for i := 1; i <= K; i++ {
		inj.FailAt(iofault.OpSync, n+i)
	}
	var wg sync.WaitGroup
	errs := make([]error, K)
	for i := 0; i < K; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, errs[i] = srv.commit([]txnOp{putOp(fmt.Sprintf("doomed%d", i), int64(i))}, "", nil)
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err == nil {
			t.Fatalf("waiter %d was acked although its batch fsync failed", i)
		}
		if !errors.Is(err, iofault.ErrInjected) {
			t.Fatalf("waiter %d failed with %v, want the injected fsync cause", i, err)
		}
	}
	if st.DurableEnd() != durable {
		t.Fatalf("durable end moved %d -> %d across an all-failed batch", durable, st.DurableEnd())
	}
	if got := len(srv.state.Load().roots); got != 1 {
		t.Fatalf("published state has %d roots after a failed batch, want 1", got)
	}

	// Rollback recovered the store: the next commit succeeds and only it
	// is durable. (Disarm the spare failures first — the K commits may
	// have coalesced into fewer than K batches.)
	inj.Clear(iofault.OpSync)
	if _, err := srv.commit([]txnOp{putOp("after", 1)}, "", nil); err != nil {
		t.Fatalf("commit after failed batch: %v", err)
	}
	if _, ok := st.Root("after"); !ok {
		t.Fatal("post-recovery commit missing from store")
	}
	for i := 0; i < K; i++ {
		if _, ok := st.Root(fmt.Sprintf("doomed%d", i)); ok {
			t.Fatalf("doomed%d resurrected after its batch failed", i)
		}
	}
}

// TestCoalescerPoisonBetweenStageAndAck is the double-ack regression: the
// batch fsync fails AND the rollback truncate fails twice (the store
// poisons, the server enters degraded mode) exactly between stage and
// ack. No waiter whose group was truncated back may be acknowledged, and
// every later write must refuse with the degraded code.
func TestCoalescerPoisonBetweenStageAndAck(t *testing.T) {
	path := filepath.Join(t.TempDir(), "poison.log")
	inj := iofault.NewInjector(iofault.OS{})
	srv, st := wbServer(t, inj, path, groupCfg())
	if _, err := srv.commit([]txnOp{putOp("base", 0)}, "", nil); err != nil {
		t.Fatal(err)
	}

	// Every sync fails for a while (whatever the batch split), and the
	// next two truncates fail too: the store's rollback AND the server's
	// Abort replay both cannot trim the staged groups — poison.
	const K = 4
	ns := inj.Count(iofault.OpSync)
	for i := 1; i <= K; i++ {
		inj.FailAt(iofault.OpSync, ns+i)
	}
	nt := inj.Count(iofault.OpTruncate)
	inj.FailAt(iofault.OpTruncate, nt+1)
	inj.FailAt(iofault.OpTruncate, nt+2)

	var wg sync.WaitGroup
	errs := make([]error, K)
	for i := 0; i < K; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, errs[i] = srv.commit([]txnOp{putOp(fmt.Sprintf("doomed%d", i), int64(i))}, "", nil)
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err == nil {
			t.Fatalf("waiter %d was acked although its group was truncated back (the double-ack hazard)", i)
		}
	}
	if !srv.degraded.Load() {
		t.Fatal("server not degraded after rollback double-failure")
	}
	var we *wire.WireError
	if _, err := srv.commit([]txnOp{putOp("later", 9)}, "", nil); !errors.As(err, &we) || we.Code != wire.CodeDegraded {
		t.Fatalf("commit on poisoned write path = %v, want CodeDegraded", err)
	}
	// HEALTH self-reports the poisoned flag next to the watermarks.
	op, fields := srv.handleHealth()
	if op != wire.OpOK {
		t.Fatalf("HEALTH answered %v", op)
	}
	h, err := wire.DecodeHealth(fields)
	if err != nil {
		t.Fatal(err)
	}
	if !h.Poisoned {
		t.Fatal("HEALTH does not report the poisoned write path")
	}

	// Restart-equivalent: reopening the file lands on a commit-group
	// boundary with every durable root intact. The doomed groups MAY be
	// visible — the failed truncates left them on disk as complete,
	// valid groups, and unacked writes surviving is extra durability,
	// not a violation. The invariant the double-ack fix protects is that
	// none of their *writers* was acknowledged (checked above).
	srv.commitMu.Lock() // the store is wedged; nothing in flight holds this
	srv.commitMu.Unlock()
	rep, err := intrinsic.Fsck(path)
	if err != nil {
		t.Fatalf("fsck after poison: %v", err)
	}
	if rep.Corrupt != nil {
		t.Fatalf("log corrupt after poisoned batch:\n%s", rep.Corrupt)
	}
	fresh, err := intrinsic.Open(path)
	if err != nil {
		t.Fatalf("reopen after poison: %v", err)
	}
	defer fresh.Close()
	if _, ok := fresh.Root("base"); !ok {
		t.Fatal("durable root lost")
	}
	_ = st
}

// TestCoalescerIdemExactlyOnce: idempotency keys stay exactly-once under
// batching — a retry in a *later* batch replays the recorded answer
// without re-executing, and a duplicate key *within* one batch stages a
// single group whose result both waiters share.
func TestCoalescerIdemExactlyOnce(t *testing.T) {
	srv, st := wbServer(t, iofault.OS{}, filepath.Join(t.TempDir(), "idem.log"), groupCfg())

	existed, err := srv.commit([]txnOp{putOp("R", 1)}, "key-1", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(existed) != 1 || existed[0] {
		t.Fatalf("first commit existed = %v, want [false]", existed)
	}
	// Across batches: re-execution would now see R existing and answer
	// [true]; the dedup cache must answer the recorded [false].
	existed, err = srv.commit([]txnOp{putOp("R", 1)}, "key-1", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(existed) != 1 || existed[0] {
		t.Fatalf("retried commit existed = %v, want the recorded [false]", existed)
	}

	// Within one batch: two concurrent commits carrying the same fresh key
	// must stage once; both see the same answer.
	groupsBefore := commitGroupCount(t, srv)
	var wg sync.WaitGroup
	results := make([][]bool, 2)
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i], errs[i] = srv.commit([]txnOp{putOp("S", 7)}, "key-2", nil)
		}()
	}
	wg.Wait()
	for i := 0; i < 2; i++ {
		if errs[i] != nil {
			t.Fatalf("dup-key commit %d: %v", i, errs[i])
		}
		if len(results[i]) != 1 || results[i][0] {
			t.Fatalf("dup-key commit %d existed = %v, want [false]", i, results[i])
		}
	}
	if grew := commitGroupCount(t, srv) - groupsBefore; grew > 1 {
		t.Fatalf("duplicate in-batch key staged %d groups, want 1", grew)
	}
	if _, ok := st.Root("S"); !ok {
		t.Fatal("S missing after dup-key batch")
	}
}

// commitGroupCount reads the durable commit-group count back out of the
// server's log via the replication reader.
func commitGroupCount(t *testing.T, srv *Server) int {
	t.Helper()
	_, _, n, err := srv.store.ReadGroupsAt(intrinsic.HeaderSize, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// gateFS lets a test hold the log's fsync open: Sync blocks until the
// test releases it. Everything else passes through.
type gateFS struct {
	iofault.FS
	mu      sync.Mutex
	blocked chan chan struct{} // one send per blocked Sync; test closes the inner chan
	open    bool
}

func newGateFS(inner iofault.FS) *gateFS {
	return &gateFS{FS: inner, blocked: make(chan chan struct{}, 16)}
}

// Hold makes subsequent Syncs block until Release.
func (g *gateFS) Hold() { g.mu.Lock(); g.open = true; g.mu.Unlock() }

// Release unblocks every blocked Sync and lets future ones pass.
func (g *gateFS) Release() {
	g.mu.Lock()
	g.open = false
	g.mu.Unlock()
	for {
		select {
		case ch := <-g.blocked:
			close(ch)
		default:
			return
		}
	}
}

func (g *gateFS) OpenFile(name string, flag int, perm os.FileMode) (iofault.File, error) {
	f, err := g.FS.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &gateFile{File: f, g: g}, nil
}

type gateFile struct {
	iofault.File
	g *gateFS
}

func (f *gateFile) Sync() error {
	f.g.mu.Lock()
	gated := f.g.open
	f.g.mu.Unlock()
	if gated {
		ch := make(chan struct{})
		f.g.blocked <- ch
		<-ch
	}
	return f.File.Sync()
}

// TestAsyncAckAheadOfDurable: under DurAsync a commit is acknowledged
// while its batch's fsync is still in flight, and the acked-end watermark
// runs ahead of the durable end by exactly that window — observable via
// HEALTH. Once the fsync lands the two converge.
func TestAsyncAckAheadOfDurable(t *testing.T) {
	gate := newGateFS(iofault.OS{})
	srv, st := wbServer(t, gate, filepath.Join(t.TempDir(), "async.log"),
		Config{Durability: DurAsync})
	// Registered after wbServer's cleanup so it runs first (LIFO): never
	// leave the committer wedged on a gated fsync after a failed assert.
	t.Cleanup(gate.Release)

	if _, err := srv.commit([]txnOp{putOp("base", 0)}, "", nil); err != nil {
		t.Fatal(err)
	}
	// The ack raced ahead of the first batch's fsync too — wait for it to
	// land so the baseline durable end is stable before gating.
	settle := time.Now().Add(5 * time.Second)
	for st.StagedGroups() != 0 || st.DurableEnd() <= intrinsic.HeaderSize {
		if time.Now().After(settle) {
			t.Fatal("first async batch never became durable")
		}
		time.Sleep(time.Millisecond)
	}
	durable := st.DurableEnd()

	gate.Hold()
	done := make(chan error, 1)
	go func() {
		_, err := srv.commit([]txnOp{putOp("fast", 1)}, "", nil)
		done <- err
	}()
	// The ack must arrive while the fsync is gated shut.
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("async commit: %v", err)
		}
	case <-time.After(5 * time.Second):
		gate.Release()
		t.Fatal("async commit was not acked before its fsync completed")
	}
	op, fields := srv.handleHealth()
	if op != wire.OpOK {
		t.Fatalf("HEALTH answered %v", op)
	}
	h, err := wire.DecodeHealth(fields)
	if err != nil {
		t.Fatal(err)
	}
	if h.DurableEnd != durable {
		t.Fatalf("durable end %d moved while the fsync was gated (was %d)", h.DurableEnd, durable)
	}
	if h.AckedEnd <= h.DurableEnd {
		t.Fatalf("acked end %d not ahead of durable end %d during the gated fsync", h.AckedEnd, h.DurableEnd)
	}
	// Read-your-writes: the acked write is in the published state.
	if _, ok := srv.state.Load().roots["fast"]; !ok {
		t.Fatal("acked async write missing from the published state")
	}

	gate.Release()
	deadline := time.Now().Add(5 * time.Second)
	for st.DurableEnd() <= durable {
		if time.Now().After(deadline) {
			t.Fatal("batch fsync never landed after release")
		}
		time.Sleep(time.Millisecond)
	}
	op, fields = srv.handleHealth()
	if op != wire.OpOK {
		t.Fatalf("HEALTH answered %v", op)
	}
	if h, err = wire.DecodeHealth(fields); err != nil {
		t.Fatal(err)
	}
	if h.AckedEnd != h.DurableEnd {
		t.Fatalf("watermarks did not converge after the fsync: acked %d, durable %d", h.AckedEnd, h.DurableEnd)
	}
}

// TestAsyncFsyncFailurePoisons: when the async batch fsync fails, writes
// were already acknowledged against state that can no longer be made
// durable — the write path must poison unconditionally and report it.
func TestAsyncFsyncFailurePoisons(t *testing.T) {
	path := filepath.Join(t.TempDir(), "async-poison.log")
	inj := iofault.NewInjector(iofault.OS{})
	srv, _ := wbServer(t, inj, path, Config{Durability: DurAsync})
	if _, err := srv.commit([]txnOp{putOp("base", 0)}, "", nil); err != nil {
		t.Fatal(err)
	}

	inj.FailAt(iofault.OpSync, inj.Count(iofault.OpSync)+1)
	// The ack precedes the fsync, so this commit reports success even
	// though its batch is about to be lost — the mode's documented risk.
	if _, err := srv.commit([]txnOp{putOp("lost", 1)}, "", nil); err != nil {
		t.Fatalf("async commit (acked before failing fsync): %v", err)
	}
	// The failure lands on the committer goroutine; the next commit must
	// observe the poisoned write path.
	var we *wire.WireError
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err := srv.commit([]txnOp{putOp("later", 2)}, "", nil)
		if errors.As(err, &we) && we.Code == wire.CodeDegraded {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("write path not poisoned after async fsync failure (last err: %v)", err)
		}
		time.Sleep(time.Millisecond)
	}
	// The acked write is genuinely lost on disk: a fresh open of the log
	// holds only the durable prefix.
	fresh, err := intrinsic.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	if _, ok := fresh.Root("lost"); ok {
		t.Fatal("write acked under async survived the failed fsync — the test premise is broken")
	}
	if _, ok := fresh.Root("base"); !ok {
		t.Fatal("durable root lost")
	}
}
