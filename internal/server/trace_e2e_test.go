package server_test

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"dbpl/internal/server"
	"dbpl/internal/telemetry/trace"
)

// findSpan returns the index of the first span named name under parent
// (or anywhere when parent < 0), or -1.
func findSpan(d trace.Data, name string, parent trace.SpanID) int {
	for i, sp := range d.Spans {
		if sp.Name == name && (parent < 0 || sp.Parent == parent) {
			return i
		}
	}
	return -1
}

// assertNested fails unless every span's interval lies within its
// parent's — the tree invariant the whole feature rests on.
func assertNested(t *testing.T, d trace.Data) {
	t.Helper()
	for i, sp := range d.Spans {
		if i == 0 {
			continue
		}
		if sp.Parent < 0 || int(sp.Parent) >= len(d.Spans) {
			t.Fatalf("span %q has out-of-range parent %d", sp.Name, sp.Parent)
		}
		p := d.Spans[sp.Parent]
		if sp.Start < p.Start || sp.Start+sp.Dur > p.Start+p.Dur {
			t.Errorf("span %q [%v,%v] escapes parent %q [%v,%v]",
				sp.Name, sp.Start, sp.Start+sp.Dur, p.Name, p.Start, p.Start+p.Dur)
		}
	}
}

// TestTraceGroupCommitSpans is the tentpole's acceptance scenario: under
// group durability a traced PUT's tree must show the queue-wait and the
// shared fsync as distinct, correctly nested children of its commit
// span, with the children's total inside the parent's duration.
func TestTraceGroupCommitSpans(t *testing.T) {
	h := bootCfg(t, filepath.Join(t.TempDir(), "store.log"), nil, server.Config{
		Durability:      server.DurGroup,
		GroupMaxDelay:   2 * time.Millisecond,
		TraceSampleRate: 1,
	})
	c := dial(t, h, nil)

	const writers = 8
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = c.Put(fmt.Sprintf("w%d", i), emp(fmt.Sprintf("W%d", i), int64(i), "Ops"), employeeT)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}

	ds, err := c.Traces()
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, d := range ds {
		if d.Op != "PUT" {
			continue
		}
		assertNested(t, d)
		ci := findSpan(d, "commit", 0)
		if ci < 0 {
			t.Fatalf("PUT trace %#x has no commit span: %+v", d.ID, d.Spans)
		}
		commit := d.Spans[ci]
		var childSum time.Duration
		for _, name := range []string{"queue-wait", "stage", "fsync", "publish"} {
			si := findSpan(d, name, trace.SpanID(ci))
			if si < 0 {
				t.Fatalf("PUT trace %#x commit span lacks %q child: %+v", d.ID, name, d.Spans)
			}
			childSum += d.Spans[si].Dur
		}
		// The four phases are sequential, disjoint sub-intervals of the
		// commit span, so their sum cannot exceed it.
		if childSum > commit.Dur {
			t.Errorf("trace %#x: children sum %v > commit span %v", d.ID, childSum, commit.Dur)
		}
		// queue-wait is the time before the batch began; the shared fsync
		// comes strictly after it.
		qw, fs := d.Spans[findSpan(d, "queue-wait", trace.SpanID(ci))], d.Spans[findSpan(d, "fsync", trace.SpanID(ci))]
		if qw.Start+qw.Dur > fs.Start {
			t.Errorf("trace %#x: queue-wait ends %v after fsync starts %v", d.ID, qw.Start+qw.Dur, fs.Start)
		}
		checked++
	}
	if checked == 0 {
		t.Fatalf("no PUT traces retained; got %d traces", len(ds))
	}
}

// TestTraceSerialCommitSpans covers the per-commit path: lock-wait,
// stage, append-fsync and publish under the commit span.
func TestTraceSerialCommitSpans(t *testing.T) {
	h := bootCfg(t, filepath.Join(t.TempDir(), "store.log"), nil,
		server.Config{TraceSampleRate: 1})
	c := dial(t, h, nil)
	if err := c.Put("alice", emp("Alice", 1, "Sales"), employeeT); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(personT); err != nil {
		t.Fatal(err)
	}

	ds, err := c.Traces()
	if err != nil {
		t.Fatal(err)
	}
	var put, get *trace.Data
	for i := range ds {
		switch ds[i].Op {
		case "PUT":
			put = &ds[i]
		case "GET":
			get = &ds[i]
		}
	}
	if put == nil || get == nil {
		t.Fatalf("want PUT and GET traces, got %d traces", len(ds))
	}
	assertNested(t, *put)
	assertNested(t, *get)
	ci := findSpan(*put, "commit", 0)
	if ci < 0 {
		t.Fatalf("PUT trace has no commit span: %+v", put.Spans)
	}
	for _, name := range []string{"lock-wait", "stage", "append-fsync", "publish"} {
		if findSpan(*put, name, trace.SpanID(ci)) < 0 {
			t.Fatalf("serial commit span lacks %q child: %+v", name, put.Spans)
		}
	}
	// The read path records its planner decision and the chosen access
	// path as spans.
	if findSpan(*get, "plan", 0) < 0 {
		t.Fatalf("GET trace has no plan span: %+v", get.Spans)
	}
	found := false
	for _, sp := range get.Spans {
		if len(sp.Name) > 5 && sp.Name[:5] == "exec:" {
			found = true
		}
	}
	if !found {
		t.Fatalf("GET trace has no exec span: %+v", get.Spans)
	}
}

// TestTraceFollowerLink: a commit traced on the primary yields a linked
// REPL-APPLY trace on the follower (via the 6-field REPDATA form) and a
// positive commit-to-apply delay observation.
func TestTraceFollowerLink(t *testing.T) {
	dir := t.TempDir()
	hp := bootCfg(t, filepath.Join(dir, "primary.log"), nil,
		server.Config{TraceSampleRate: 1})
	hf := bootCfg(t, filepath.Join(dir, "follower.log"), nil, server.Config{
		Follow: hp.addr, ReplHeartbeat: 50 * time.Millisecond, TraceSampleRate: 1})
	cp := dial(t, hp, nil)

	var linked *trace.Data
	deadline := time.Now().Add(5 * time.Second)
	for i := 0; linked == nil && time.Now().Before(deadline); i++ {
		if err := cp.Put(fmt.Sprintf("r%d", i), emp("R", int64(i), "Lab"), employeeT); err != nil {
			t.Fatal(err)
		}
		time.Sleep(20 * time.Millisecond)
		for _, d := range hf.srv.Traces() {
			if d.Op == "REPL-APPLY" && d.Link != 0 {
				linked = &d
				break
			}
		}
	}
	if linked == nil {
		t.Fatal("follower never recorded a linked REPL-APPLY trace")
	}
	assertNested(t, *linked)
	if findSpan(*linked, "apply", 0) < 0 || findSpan(*linked, "publish", 0) < 0 {
		t.Fatalf("apply trace lacks apply/publish spans: %+v", linked.Spans)
	}
	// The link is the primary's commit trace: the primary retained that
	// very tree.
	found := false
	for _, d := range hp.srv.Traces() {
		if d.ID == linked.Link && d.Op == "PUT" {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("primary has no PUT trace with ID %#x (the follower's link)", linked.Link)
	}

	cf := dial(t, hf, nil)
	snap, err := cf.Stats()
	if err != nil {
		t.Fatal(err)
	}
	hist, ok := snap.Histogram("dbpl_repl_apply_delay_seconds")
	if !ok || hist.Count == 0 {
		t.Fatalf("apply-delay histogram count = %d, want > 0", hist.Count)
	}
	if hist.Sum <= 0 {
		t.Errorf("apply-delay sum = %d ns, want positive (apply happens after commit)", hist.Sum)
	}
	if hist.Exemplars == nil {
		t.Error("apply-delay histogram has no exemplar trace IDs")
	}
}

// TestTraceSamplingOff: the default configuration runs with tracing
// disabled — no trees retained, TRACES answers empty, and the request
// path carries only the nil-trace no-ops (the E20 overhead story).
func TestTraceSamplingOff(t *testing.T) {
	h := boot(t, filepath.Join(t.TempDir(), "store.log"))
	c := dial(t, h, nil)
	if err := c.Put("alice", emp("Alice", 1, "Sales"), employeeT); err != nil {
		t.Fatal(err)
	}
	if ds, err := c.Traces(); err != nil || len(ds) != 0 {
		t.Fatalf("Traces() = %d traces, err %v; want 0, nil", len(ds), err)
	}
	if h.srv.Traces() != nil {
		t.Fatal("server retains traces with sampling off")
	}
	// Commit exemplars still carry the client's wire trace ID, so a slow
	// write stays findable even without span trees.
	snap, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if hist, ok := snap.Histogram(`dbpl_server_request_seconds{op="PUT"}`); !ok || hist.Exemplars == nil {
		t.Error("PUT latency histogram lost its wire-trace exemplar with sampling off")
	}
}
