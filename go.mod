module dbpl

go 1.22
