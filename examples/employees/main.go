// Employees: the paper's running person/employee/student database, shown
// three ways — (1) derived extents via the generic Get, (2) explicit
// Adaplex-style class extents, and (3) a program in the database
// programming language using get and open. All three agree, demonstrating
// that the class construct is derivable from the type hierarchy.
package main

import (
	"fmt"
	"log"
	"os"

	"dbpl"
	"dbpl/internal/class"
	"dbpl/internal/core"
	"dbpl/internal/value"
)

func main() {
	personT := dbpl.MustParseType("{Name: String}")
	employeeT := dbpl.MustParseType("{Name: String, Empno: Int, Dept: String}")
	studentT := dbpl.MustParseType("{Name: String, StudentID: Int}")

	people := []*value.Record{
		dbpl.Rec("Name", dbpl.Str("P1")),
		dbpl.Rec("Name", dbpl.Str("E1"), "Empno", dbpl.IntV(1), "Dept", dbpl.Str("Sales")),
		dbpl.Rec("Name", dbpl.Str("E2"), "Empno", dbpl.IntV(2), "Dept", dbpl.Str("Manuf")),
		dbpl.Rec("Name", dbpl.Str("S1"), "StudentID", dbpl.IntV(100)),
		dbpl.Rec("Name", dbpl.Str("SE1"), "Empno", dbpl.IntV(3), "Dept", dbpl.Str("Admin"),
			"StudentID", dbpl.IntV(101)),
	}

	// (1) Derived extents: no classes anywhere.
	db := core.New(core.StrategyIndexed)
	for _, p := range people {
		db.InsertValue(p)
	}
	fmt.Println("— derived extents (generic Get) —")
	for _, q := range []struct {
		name string
		t    dbpl.Type
	}{{"Person", personT}, {"Employee", employeeT}, {"Student", studentT}} {
		fmt.Printf("  Get[%s] = %d\n", q.name, len(db.Get(q.t)))
	}

	// (2) Declared classes: Taxis/Adaplex style, same data.
	s := class.NewSchema()
	person := s.MustDeclare("Person", class.VariableClass, "{Name: String}")
	employee := s.MustDeclare("Employee", class.VariableClass,
		"{Name: String, Empno: Int, Dept: String}", "Person")
	student := s.MustDeclare("Student", class.VariableClass,
		"{Name: String, StudentID: Int}", "Person")
	both := s.MustDeclare("StudentEmployee", class.VariableClass,
		"{Name: String, Empno: Int, Dept: String, StudentID: Int}", "Employee", "Student")
	classOf := func(r *value.Record) *class.Class {
		_, isE := r.Get("Empno")
		_, isS := r.Get("StudentID")
		switch {
		case isE && isS:
			return both
		case isE:
			return employee
		case isS:
			return student
		default:
			return person
		}
	}
	for _, p := range people {
		if _, err := s.NewObject(classOf(p), p); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("— declared class extents (Adaplex include semantics) —")
	for _, c := range []*class.Class{person, employee, student} {
		ext, _ := c.Extent()
		fmt.Printf("  %s extent = %d\n", c.Name(), len(ext))
	}

	// They agree, pointwise.
	for _, c := range []*class.Class{person, employee, student} {
		ext, _ := c.Extent()
		if got := len(db.Get(c.Type())); got != len(ext) {
			log.Fatalf("derived and declared extents disagree for %s: %d vs %d",
				c.Name(), got, len(ext))
		}
	}
	fmt.Println("✓ derived extents = declared class extents")

	// (3) The same database inside the language, with an existential open.
	fmt.Println("— in the language —")
	in := dbpl.NewInterp(os.Stdout)
	if _, err := in.Run(`
		type Person = {Name: String};
		type Employee = {Name: String, Empno: Int, Dept: String};
		let db: List[Dynamic] = [
			dynamic {Name = "P1"},
			dynamic {Name = "E1", Empno = 1, Dept = "Sales"},
			dynamic {Name = "E2", Empno = 2, Dept = "Manuf"},
			dynamic {Name = "S1", StudentID = 100},
			dynamic {Name = "SE1", Empno = 3, Dept = "Admin", StudentID = 101}
		];
		print("  get[Person]   = " ++ show(length(get[Person](db))));
		print("  get[Employee] = " ++ show(length(get[Employee](db))));
		-- Open each employee package at its bound and read a Person field.
		let names = map(fun(e: exists u <= Employee . u): String is
			open e as (t, x) in x.Name, get[Employee](db));
		print("  employee names: " ++ show(names))
	`); err != nil {
		log.Fatal(err)
	}
}
