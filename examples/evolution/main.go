// Evolution: the paper's "Persistent Pascal" scenario. A program binds a
// database handle at DBType; later programs are recompiled with different
// DBType' declarations. Opening the handle at a *supertype* is a view;
// opening at a *consistent* type enriches the stored schema to the meet;
// an inconsistent type is rejected. The whole matrix runs against one
// intrinsic store, first through the Go API and then as three successive
// programs in the language.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"dbpl"
)

func main() {
	dir, err := os.MkdirTemp("", "dbpl-evolution-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "db.log")

	// Program 1 declares DBType and creates the database.
	stored := dbpl.MustParseType("{Employees: Set[{Name: String, Empno: Int}]}")
	st, err := dbpl.OpenStore(path)
	if err != nil {
		log.Fatal(err)
	}
	db := dbpl.Rec("Employees", dbpl.NewSet(
		dbpl.Rec("Name", dbpl.Str("J Doe"), "Empno", dbpl.IntV(1)),
	))
	if err := st.Bind("DB", db, stored); err != nil {
		log.Fatal(err)
	}
	if _, err := st.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("program 1 bound DB :", stored)

	// Program 2 is compiled against a SUPERTYPE: it sees a view.
	view := dbpl.MustParseType("{Employees: Set[{Name: String}]}")
	v, err := st.OpenAs("DB", view)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("program 2 (supertype) sees a view:", v)
	r, _ := st.Root("DB")
	fmt.Println("  stored schema unchanged:", r.Declared)

	// Program 3 is compiled against a CONSISTENT type that adds a field:
	// the value must first be migrated, then the schema enriches to the meet.
	richer := dbpl.MustParseType("{Employees: Set[{Name: String, Empno: Int}], Departments: Set[{Dept: String}]}")
	if _, err := st.OpenAs("DB", richer); err != nil {
		fmt.Println("program 3 (consistent) first attempt:", err)
	}
	migrated := dbpl.Rec(
		"Employees", r.Value.(*dbpl.Record).MustGet("Employees"),
		"Departments", dbpl.NewSet(),
	)
	if err := st.Bind("DB", migrated, r.Declared); err != nil {
		log.Fatal(err)
	}
	if _, err := st.OpenAs("DB", richer); err != nil {
		log.Fatal(err)
	}
	r2, _ := st.Root("DB")
	fmt.Println("program 3 enriched the schema to the meet:")
	fmt.Println("  ", r2.Declared)

	// Program 4 is compiled against an INCONSISTENT type: rejected.
	if _, err := st.OpenAs("DB", dbpl.MustParseType("{Employees: Int}")); err != nil {
		fmt.Println("program 4 (inconsistent) rejected:", err)
	} else {
		log.Fatal("inconsistent open should have failed")
	}
	if _, err := st.Commit(); err != nil {
		log.Fatal(err)
	}
	st.Close()

	// The same story in the language: successive "compilations" of the
	// paper's program Test against evolving DBType declarations.
	fmt.Println("\n— in the language —")
	langPath := filepath.Join(dir, "lang.log")
	run := func(src string, expectErr bool) {
		store, err := dbpl.OpenStore(langPath)
		if err != nil {
			log.Fatal(err)
		}
		defer store.Close()
		in := dbpl.NewInterp(os.Stdout)
		in.Intrinsic = store
		_, err = in.Run(src)
		switch {
		case err != nil && !expectErr:
			log.Fatal(err)
		case err != nil:
			fmt.Println("  rejected as expected:", err)
		}
	}
	run(`
		persistent DB : {Employees: List[{Name: String, Empno: Int}]} =
			{Employees = [{Name = "J Doe", Empno = 1}]};
		commit();
		print("  program 1 created DB")
	`, false)
	run(`
		persistent DB : {Employees: List[{Name: String}]} = {Employees = []};
		print("  program 2 views " ++ show(length(DB.Employees)) ++ " employee(s) at the supertype")
	`, false)
	run(`persistent DB : {Employees: Int} = {Employees = 0}`, true)
}
