// Bill of materials: the paper's closing example. TotalCost over a parts
// explosion that is a DAG, not a tree, recomputes shared subassemblies
// exponentially often unless intermediate results are memoized — and the
// memo fields, attached to *persistent* Part records, are themselves
// transient: they are invisible to the type system and are not written by
// commit. The program runs the paper's recursive TotalCost both naive and
// memoized, on a persistent catalogue, and shows the memo fields vanishing
// across a reopen.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"dbpl"
	"dbpl/internal/value"
)

// buildDAG builds a parts DAG of the given depth where every assembly uses
// the *same* two subassemblies one level down (maximum sharing: 2^depth
// paths through depth+1 distinct parts).
func buildDAG(depth int) *value.Record {
	part := dbpl.Rec("Name", dbpl.Str("base"), "IsBase", dbpl.BoolV(true),
		"PurchasePrice", dbpl.FloatV(1), "ManufacturingCost", dbpl.FloatV(0),
		"Components", dbpl.NewList())
	for i := 1; i <= depth; i++ {
		part = dbpl.Rec(
			"Name", dbpl.Str(fmt.Sprintf("asm-%d", i)),
			"IsBase", dbpl.BoolV(false),
			"PurchasePrice", dbpl.FloatV(0),
			"ManufacturingCost", dbpl.FloatV(1),
			"Components", dbpl.NewList(
				dbpl.Rec("SubPart", part, "Qty", dbpl.IntV(1)),
				dbpl.Rec("SubPart", part, "Qty", dbpl.IntV(1)),
			),
		)
	}
	return part
}

// totalCostNaive is the paper's recursive program, verbatim: when the parts
// explosion is a DAG "the total cost will be needlessly recomputed".
func totalCostNaive(p *value.Record, calls *int) float64 {
	*calls++
	if bool(p.MustGet("IsBase").(value.Bool)) {
		return float64(p.MustGet("PurchasePrice").(value.Float))
	}
	cost := float64(p.MustGet("ManufacturingCost").(value.Float))
	for _, c := range p.MustGet("Components").(*value.List).Elems {
		comp := c.(*value.Record)
		sub := comp.MustGet("SubPart").(*value.Record)
		qty := float64(comp.MustGet("Qty").(value.Int))
		cost += totalCostNaive(sub, calls) * qty
	}
	return cost
}

// totalCostMemo attaches the intermediate result to the part itself, in a
// transient "_cost" field, exactly as the paper prescribes: "we need to
// attach further fields to the Part type in which to store these results …
// there is no need for the additional information to persist".
func totalCostMemo(p *value.Record, calls *int) float64 {
	*calls++
	if bool(p.MustGet("IsBase").(value.Bool)) {
		return float64(p.MustGet("PurchasePrice").(value.Float))
	}
	if memo, ok := p.Get("_cost"); ok {
		return float64(memo.(value.Float))
	}
	cost := float64(p.MustGet("ManufacturingCost").(value.Float))
	for _, c := range p.MustGet("Components").(*value.List).Elems {
		comp := c.(*value.Record)
		sub := comp.MustGet("SubPart").(*value.Record)
		qty := float64(comp.MustGet("Qty").(value.Int))
		cost += totalCostMemo(sub, calls) * qty
	}
	p.Set("_cost", dbpl.FloatV(cost))
	return cost
}

func main() {
	const depth = 22
	root := buildDAG(depth)

	dir, err := os.MkdirTemp("", "dbpl-bom-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "catalogue.log")

	// The catalogue is persistent; the memo fields will not be.
	st, err := dbpl.OpenStore(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := st.Bind("catalogue", root, nil); err != nil {
		log.Fatal(err)
	}
	if _, err := st.Commit(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("parts DAG: depth %d, %d distinct parts, %d paths\n",
		depth, depth+1, 1<<depth)

	var nCalls, mCalls int
	t0 := time.Now()
	naive := totalCostNaive(root, &nCalls)
	naiveTime := time.Since(t0)

	t0 = time.Now()
	memo := totalCostMemo(root, &mCalls)
	memoTime := time.Since(t0)

	fmt.Printf("naive   : cost=%.0f  calls=%-9d time=%v\n", naive, nCalls, naiveTime)
	fmt.Printf("memoized: cost=%.0f  calls=%-9d time=%v\n", memo, mCalls, memoTime)
	if naive != memo {
		log.Fatalf("memoization changed the answer: %v vs %v", naive, memo)
	}

	// Commit again: the memo fields are transient, so this is a no-op.
	stats, err := st.Commit()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("commit after memoization wrote %d nodes (memo fields are transient)\n",
		stats.NodesWritten)
	st.Close()

	// Reopen: the parts are back, the memos are gone.
	st2, err := dbpl.OpenStore(path)
	if err != nil {
		log.Fatal(err)
	}
	defer st2.Close()
	r, ok := st2.Root("catalogue")
	if !ok {
		log.Fatal("catalogue lost")
	}
	if _, hasMemo := r.Value.(*value.Record).Get("_cost"); hasMemo {
		log.Fatal("memo field persisted — it must not")
	}
	fmt.Println("✓ catalogue reopened without memo fields; parts intact:",
		r.Value.(*value.Record).MustGet("Name"))
}
