// Figure 1: regenerates the paper's only figure — "A join of generalized
// relations" — exactly, and verifies the computed join against the
// published result.
package main

import (
	"fmt"
	"log"

	"dbpl/internal/relation"
)

func main() {
	r1 := relation.Figure1R1()
	r2 := relation.Figure1R2()
	got := relation.Join(r1, r2)

	fmt.Println("R1 =")
	fmt.Println(indent(r1.String()))
	fmt.Println("\nR2 =")
	fmt.Println(indent(r2.String()))
	fmt.Println("\nR1 ⋈ R2 =")
	fmt.Println(indent(got.String()))

	want := relation.Figure1Result()
	if !relation.Equal(got, want) {
		log.Fatalf("MISMATCH with the published Figure 1:\nwant %s", want)
	}
	fmt.Println("\n✓ matches the paper's published Figure 1 (4 tuples, cochain).")
}

func indent(s string) string {
	return "  " + s
}
