// Parking lot: the paper's instance-hierarchy scenario. "The only
// information maintained on cars in the University parking lot is the
// registration number (tag), and make-and-model. Information such as the
// length, which is used to derive charges and the availability of space, is
// derived from the make-and-model." A car is an *instance of* a
// make-and-model; make-and-models are themselves instances of a meta-class.
// The example also shows the products scenario, where the level in the
// instance hierarchy depends on an attribute (price).
package main

import (
	"fmt"
	"log"

	"dbpl"
	"dbpl/internal/class"
	"dbpl/internal/value"
)

func main() {
	s := class.NewSchema()

	// Meta-class: make-and-models carry Make and Length at class level.
	makeModel, err := s.DeclareMeta("MakeModel",
		dbpl.MustParseType("{Make: String, Length: Int}"))
	if err != nil {
		log.Fatal(err)
	}

	carT := dbpl.MustParseType("{Tag: String}")
	nova, err := s.DeclareInstanceOf(makeModel, "ChevvyNova", class.VariableClass, carT,
		dbpl.Rec("Make", dbpl.Str("Chevrolet"), "Length", dbpl.IntV(183)))
	if err != nil {
		log.Fatal(err)
	}
	beetle, err := s.DeclareInstanceOf(makeModel, "VWBeetle", class.VariableClass, carT,
		dbpl.Rec("Make", dbpl.Str("Volkswagen"), "Length", dbpl.IntV(160)))
	if err != nil {
		log.Fatal(err)
	}

	// Park some cars. Two identical Novas can coexist: objects are not
	// identified by intrinsic properties (they differ only by identity —
	// exactly the paper's tag-less scenario).
	tags := []struct {
		mm  *class.Class
		tag string
	}{
		{nova, "PA-1234"}, {nova, "PA-5678"}, {beetle, "NJ-0001"},
	}
	var cars []*class.Object
	for _, c := range tags {
		o, err := s.NewObject(c.mm, dbpl.Rec("Tag", dbpl.Str(c.tag)))
		if err != nil {
			log.Fatal(err)
		}
		cars = append(cars, o)
	}

	// Charge by length, read through the instance hierarchy: the length is
	// a property of the make-and-model, not the car.
	fmt.Println("— parking charges (length read from the make-and-model) —")
	total := 0
	for _, car := range cars {
		tag, _ := class.AttrOf(car, "Tag")
		length, ok := class.AttrOf(car, "Length")
		if !ok {
			log.Fatalf("car %s has no derivable length", tag)
		}
		charge := int(length.(value.Int)) / 20
		total += charge
		fmt.Printf("  %-8s %-10s length=%-4s charge=$%d\n",
			tag, car.Class().Name(), length, charge)
	}
	fmt.Printf("  lot income: $%d\n", total)

	// The meta level is navigable in both directions.
	fmt.Println("— the instance hierarchy —")
	for _, mm := range makeModel.ClassInstances() {
		ext, _ := mm.Extent()
		mk, _ := mm.ClassAttr("Make")
		fmt.Printf("  %s (an instance of MakeModel, Make=%s) has %d parked instances\n",
			mm.Name(), mk, len(ext))
	}

	// Products: "above a certain price they are treated as individuals …
	// below that price they are treated as classes".
	fmt.Println("— products: the level shift on price —")
	cheapMeta, err := s.DeclareMeta("CheapProduct",
		dbpl.MustParseType("{Weight: Float, NumberInStock: Int}"))
	if err != nil {
		log.Fatal(err)
	}
	washer, err := s.DeclareInstanceOf(cheapMeta, "Washer10mm", class.VariableClass,
		dbpl.MustParseType("{}"),
		dbpl.Rec("Weight", dbpl.FloatV(0.01), "NumberInStock", dbpl.IntV(12000)))
	if err != nil {
		log.Fatal(err)
	}
	stock, _ := washer.ClassAttr("NumberInStock")
	fmt.Printf("  Washer10mm is a CLASS: weight and stock are class properties (stock=%s)\n", stock)

	expensive := s.MustDeclare("ExpensiveProduct", class.VariableClass,
		"{Serial: Int, Weight: Float, CompletionDate: String}")
	turbine, err := s.NewObject(expensive, dbpl.Rec(
		"Serial", dbpl.IntV(77), "Weight", dbpl.FloatV(1200),
		"CompletionDate", dbpl.Str("1986-05-28")))
	if err != nil {
		log.Fatal(err)
	}
	w, _ := class.AttrOf(turbine, "Weight")
	fmt.Printf("  turbine #77 is an INDIVIDUAL: weight lives on the object (weight=%s)\n", w)
}
