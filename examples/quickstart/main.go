// Quickstart: a tour of the dbpl public API — types with subtyping, the
// derived-extent Get, object-level join, generalized relations, and the
// three forms of persistence.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"dbpl"
)

func main() {
	// --- Types: the Person/Employee hierarchy is structural. -------------
	person := dbpl.MustParseType("{Name: String, Address: {City: String}}")
	employee := dbpl.MustParseType("{Name: String, Address: {City: String}, Empno: Int, Dept: String}")
	fmt.Println("Employee ≤ Person:", dbpl.Subtype(employee, person))
	fmt.Println("Person ≤ Employee:", dbpl.Subtype(person, employee))

	// --- The database: a heterogeneous bag of dynamics. ------------------
	db := dbpl.NewDatabase(dbpl.StrategyIndexed)
	db.InsertValue(dbpl.Rec("Name", dbpl.Str("P Buneman"),
		"Address", dbpl.Rec("City", dbpl.Str("Philadelphia"))))
	db.InsertValue(dbpl.Rec("Name", dbpl.Str("M Atkinson"),
		"Address", dbpl.Rec("City", dbpl.Str("Glasgow")),
		"Empno", dbpl.IntV(1), "Dept", dbpl.Str("Computing Science")))
	db.InsertValue(dbpl.IntV(1986)) // anything goes in

	fmt.Printf("Get[Person]: %d objects, Get[Employee]: %d objects\n",
		len(db.Get(person)), len(db.Get(employee)))
	fmt.Println("Get's own type:", dbpl.GetType)

	// --- Object-level inheritance: add information with ⊔. ---------------
	p := dbpl.Rec("Name", dbpl.Str("J Doe"))
	e, err := dbpl.JoinValues(p, dbpl.Rec("Emp_no", dbpl.IntV(1234)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("person ⊔ employee-info =", e)

	// --- Generalized relations: partial tuples join like Figure 1. -------
	r1 := dbpl.NewRelation(
		dbpl.Rec("Name", dbpl.Str("N Bug")),
		dbpl.Rec("Name", dbpl.Str("J Doe"), "Dept", dbpl.Str("Sales")),
	)
	r2 := dbpl.NewRelation(dbpl.Rec("Dept", dbpl.Str("Sales"), "Floor", dbpl.IntV(3)))
	fmt.Println("generalized join:", dbpl.JoinRelations(r1, r2))

	// --- Intrinsic persistence: handles, commit, reopen. ------------------
	dir, err := os.MkdirTemp("", "dbpl-quickstart-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "store.log")

	st, err := dbpl.OpenStore(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := st.Bind("company", dbpl.Rec("Employees", dbpl.NewSet(e)), nil); err != nil {
		log.Fatal(err)
	}
	if _, err := st.Commit(); err != nil {
		log.Fatal(err)
	}
	st.Close()

	st2, err := dbpl.OpenStore(path)
	if err != nil {
		log.Fatal(err)
	}
	defer st2.Close()
	root, _ := st2.Root("company")
	fmt.Println("reopened store, company =", root.Value)
	fmt.Println("stored schema          =", root.Declared)

	// --- And the language itself. -----------------------------------------
	in := dbpl.NewInterp(os.Stdout)
	if _, err := in.Run(`
		type Person = {Name: String};
		let db: List[Dynamic] = [
			dynamic {Name = "P1"},
			dynamic {Name = "E1", Empno = 1}
		];
		print("persons in the language db: " ++ show(length(get[Person](db))))
	`); err != nil {
		log.Fatal(err)
	}
}
