// Textsearch: the paper's point about non-persistent extents. "Merrett
// gives several examples of the use of relational algebra to solve a
// variety of problems drawn from areas as diverse as computational geometry
// and text processing." Here relations are used as a *data structure*: an
// inverted index over a small corpus is a flat relation, conjunctive
// queries are natural joins, and every intermediate relation is a
// transient extent that never touches a persistent store — type, extent
// and persistence used à la carte.
package main

import (
	"fmt"
	"strings"

	"dbpl"
	"dbpl/internal/relation"
	"dbpl/internal/value"
)

var corpus = map[string]string{
	"sigmod86": "inheritance and persistence in database programming languages",
	"amber":    "amber supports inheritance on types and a general form of persistence",
	"pascalr":  "pascal r separates relation types and the database that gives persistence",
	"taxis":    "taxis ties classes to extents in the language",
	"psalgol":  "ps algol allows arbitrary values to persist in a database",
	"galileo":  "galileo is a strongly typed conceptual language with classes",
}

// index builds the inverted index as a flat relation Posting(Word, Doc).
func index() *relation.Flat {
	post := relation.NewFlat("Word", "Doc")
	for doc, text := range corpus {
		for _, w := range strings.Fields(text) {
			// Set semantics deduplicate repeated words per document.
			if err := post.Insert(dbpl.Rec("Word", dbpl.Str(w), "Doc", dbpl.Str(doc))); err != nil {
				panic(err)
			}
		}
	}
	return post
}

// docsWith selects the postings for one word and projects onto Doc — a
// transient relation.
func docsWith(post *relation.Flat, word string) *relation.Flat {
	sel := relation.SelectFlat(post, func(r *value.Record) bool {
		w, _ := r.Get("Word")
		return value.Equal(w, dbpl.Str(word))
	})
	p, err := relation.ProjectFlat(sel, "Doc")
	if err != nil {
		panic(err)
	}
	return p
}

// query answers a conjunctive keyword query by joining the per-word
// document relations: the natural join over the shared Doc attribute is
// set intersection.
func query(post *relation.Flat, words ...string) []string {
	if len(words) == 0 {
		return nil
	}
	acc := docsWith(post, words[0])
	for _, w := range words[1:] {
		acc = relation.NaturalJoin(acc, docsWith(post, w))
	}
	var out []string
	for _, t := range acc.Tuples() {
		d, _ := t.Get("Doc")
		out = append(out, string(d.(value.String)))
	}
	return out
}

func main() {
	post := index()
	fmt.Printf("inverted index: %d postings over %d documents\n", post.Len(), len(corpus))

	queries := [][]string{
		{"persistence"},
		{"inheritance"},
		{"persistence", "database"},
		{"inheritance", "persistence"},
		{"classes", "language"},
		{"nonexistent"},
	}
	for _, q := range queries {
		docs := query(post, q...)
		fmt.Printf("  %-28s -> %v\n", strings.Join(q, " AND "), docs)
	}

	// The same computation with generalized relations and partial records:
	// a query is itself a relation of required fields, joined against the
	// postings — no special query language needed.
	fmt.Println("\nas a generalized-relation join:")
	gen := post.Generalize()
	q := dbpl.NewRelation(dbpl.Rec("Word", dbpl.Str("persistence")))
	res := dbpl.Project(dbpl.JoinRelations(gen, q), "Doc")
	fmt.Println("  persistence ->", res)
}
