# Convenience targets for the dbpl reproduction.

GO ?= go

.PHONY: all build vet test test-short bench report examples fuzz clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Skips the end-to-end `go run` example tests.
test-short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every experiment (E1–E10) as paper-style tables.
report:
	$(GO) run ./cmd/benchreport

report-quick:
	$(GO) run ./cmd/benchreport -quick

examples:
	@for d in quickstart figure1 employees parkinglot billofmaterials evolution textsearch; do \
		echo "=== $$d ==="; $(GO) run ./examples/$$d || exit 1; done

# Short fuzz passes over the decoders and the language pipeline.
fuzz:
	$(GO) test -fuzz=FuzzUnmarshalValue -fuzztime=30s ./internal/persist/codec/
	$(GO) test -fuzz=FuzzDecodeType -fuzztime=30s ./internal/persist/codec/
	$(GO) test -fuzz=FuzzRun -fuzztime=30s ./internal/lang/

clean:
	$(GO) clean ./...
