# Convenience targets for the dbpl reproduction.

GO ?= go

.PHONY: all build vet fmt-check test test-short race bench report examples faults fuzz fuzz-wire serve-tests chaos-tests telemetry-tests index-tests repl-tests commit-tests failover-tests trace-tests clean

all: build vet fmt-check test faults race serve-tests chaos-tests telemetry-tests index-tests repl-tests commit-tests failover-tests trace-tests fuzz-wire

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Fails if any file is not gofmt-clean, or if vet finds anything.
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...

test:
	$(GO) test ./...

# The concurrency stress tests (core engine, persist stores) are only
# meaningful under the race detector.
race:
	$(GO) test -race ./...

# Skips the end-to-end `go run` example tests.
test-short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every experiment (E1–E19) as paper-style tables.
report:
	$(GO) run ./cmd/benchreport

report-quick:
	$(GO) run ./cmd/benchreport -quick

examples:
	@for d in quickstart figure1 employees parkinglot billofmaterials evolution textsearch; do \
		echo "=== $$d ==="; $(GO) run ./examples/$$d || exit 1; done

# The fault-injection and crash-consistency suites: every persistence
# store driven through iofault.Injector — per-operation failures, torn
# writes, and a crash at every mutating I/O boundary — plus fsck/salvage
# and the v1 log compatibility checks.
faults:
	$(GO) test -run 'Fault|Crash|Fsck|Salvage|Poison|V1Log|Inject|LoseUnsynced' \
		./internal/persist/... ./cmd/dbpl/

# The server battery: the e2e suite, the commit/abort isolation stress,
# and the client/wire unit tests, all under the race detector, plus the
# cmd-level signal regression tests.
serve-tests:
	$(GO) test -race ./internal/server/... ./client/ ./cmd/dbpl/

# The resilience battery (docs/RESILIENCE.md): the netfault proxy unit
# tests, the chaos e2e suite (resets/partitions/corruption/overload
# around acknowledged writes), the idempotency dedup, and the client
# retry-policy tests — all under the race detector.
chaos-tests:
	$(GO) test -race -run 'Chaos|Idem|Retry|Overload|Health|Forward|Latency|Reset|Flip|Blackhole|Partition' \
		./internal/server/... ./client/

# The observability battery (docs/OBSERVABILITY.md): the telemetry
# package unit tests (histogram edges, snapshot immutability, codec,
# Prometheus exposition, instrumented FS), the server STATS/slow-log/ops
# e2e tests, the client trace and metrics tests, and the stats-verb
# subprocess test — all under the race detector.
telemetry-tests:
	$(GO) test -race ./internal/telemetry/
	$(GO) test -race -run 'Telemetry|Stats|Trace|SlowLog|SlowOps|OpsHandler|OpsEndpoint|Health|Prom|Snapshot|Histogram' \
		./internal/server/... ./client/ ./cmd/dbpl/

# The index battery (docs/INDEXES.md): the extent/field-index unit,
# quick-check and concurrent-maintenance tests, the cost-model and
# join-planning tests, the server index e2e (DDL lifecycle, txn refusal,
# restart durability, STATS counters), and the persist-layer 'X'-record
# durability + crash tests proving an index definition is never ahead of
# the durable offset — all under the race detector.
index-tests:
	$(GO) test -race ./internal/index/ ./internal/plan/
	$(GO) test -race -run 'Index|Plan|Explain|Extent' \
		./internal/server/... ./internal/relation/ ./internal/persist/intrinsic/ ./client/

# The replication battery (docs/REPLICATION.md): the wire codec for the
# REPLICATE stream, the store-level ship/apply round-trip and the
# follower-prefix crash matrix, the follower e2e suite (reads served,
# writes refused typed, restart/resume both directions), the replication
# chaos tests (partition/heal, flipped bytes on the stream, follower
# crash mid-apply), and the client fan-out tests (read-your-writes
# pinning, staleness bound, fallback) — all under the race detector.
repl-tests:
	$(GO) test -race -run 'Repl|Follower|Replica|Heartbeat|ReadOnly|PrimaryRestart|ReadGroups|ApplyGroup' \
		./internal/server/... ./internal/persist/intrinsic/ ./client/

# The group-commit battery (docs/PERSISTENCE.md durability modes): the
# store-level batched-append tests (stage/sync round trip, byte-identity
# with the serial log, the crash matrix at every I/O boundary, prefix
# replay), the coalescer white-box tests (shared fsync, fail-the-whole-
# batch, the stage→ack poison regression, exactly-once idempotency, the
# async watermark), and the e2e concurrency stress — all under the race
# detector.
commit-tests:
	$(GO) test -race -run 'Batch|Stage|SyncBatch|Coalescer|GroupCommit|Async|Compact' \
		./internal/persist/intrinsic/ ./internal/server/...

# The failover battery (docs/REPLICATION.md failover runbook): the
# store-level promotion tests (durable epoch bump, crash matrix at every
# I/O boundary, prefix/divergence properties, fork detection on rejoin),
# the server chaos battery (kill-primary promotion, fencing of a
# partitioned stale primary's late acks, typed divergent-rejoin refusal,
# bit flips and hung links during promotion), and the client-driven
# write-failover e2e — all under the race detector.
failover-tests:
	$(GO) test -race -run 'Promote|Failover|Fence|Fenced|Diverge|VerifyTail|Epoch|HangNext|WriteFailover' \
		./internal/persist/intrinsic/ ./internal/server/... ./client/ ./cmd/dbpl/

# The tracing battery (docs/OBSERVABILITY.md Tracing): the trace package
# unit tests (span nesting, sampler determinism, forced-retention ring
# under racing writers, codec hardening), the wire tests for the traced
# frame fast path and the 6-field REPDATA form, the server trace e2e
# suite (group-commit span nesting, the follower's linked apply trace,
# TRACES opcode, sampling off), and the client zero-alloc stamping test
# — all under the race detector.
trace-tests:
	$(GO) test -race ./internal/telemetry/trace/
	$(GO) test -race -run 'Trace|Exemplar|ReplData|AppendTracedFrame|SlowLogConcurrent|Delta' \
		./internal/server/... ./internal/telemetry/... ./client/

# Short fuzz passes over the decoders and the language pipeline.
fuzz:
	$(GO) test -fuzz=FuzzUnmarshalValue -fuzztime=30s ./internal/persist/codec/
	$(GO) test -fuzz=FuzzDecodeType -fuzztime=30s ./internal/persist/codec/
	$(GO) test -fuzz=FuzzRun -fuzztime=30s ./internal/lang/

# The wire-decoder fuzz contract (part of `make all`): malformed frames,
# truncated length prefixes and oversize claims must yield typed wire
# errors — never a panic, never an unbounded allocation.
fuzz-wire:
	$(GO) test -fuzz=FuzzReadFrame -fuzztime=30s ./internal/server/wire/

clean:
	$(GO) clean ./...
