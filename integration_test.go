package dbpl_test

import (
	"path/filepath"
	"testing"

	"dbpl"
	"dbpl/internal/class"
	"dbpl/internal/core"
	"dbpl/internal/fd"
	"dbpl/internal/relation"
	"dbpl/internal/value"
)

// TestEndToEndSeparation is the thesis of the paper as one test: the same
// objects flow through an intrinsic store (persistence), a heterogeneous
// database with the generic Get (derived extents), a declared class schema
// (the baseline), generalized relations (object-level inheritance) and the
// language — and every view agrees, with type, extent and persistence
// combined à la carte rather than welded into a class construct.
func TestEndToEndSeparation(t *testing.T) {
	dir := t.TempDir()
	personT := dbpl.MustParseType("{Name: String}")
	employeeT := dbpl.MustParseType("{Name: String, Empno: Int, Dept: String}")

	// --- Persistence: build the company, commit, reopen. -----------------
	mk := func(name string, empno int64, dept string) *value.Record {
		r := dbpl.Rec("Name", dbpl.Str(name))
		if dept != "" {
			r.Set("Empno", dbpl.IntV(empno))
			r.Set("Dept", dbpl.Str(dept))
		}
		return r
	}
	people := dbpl.NewList(
		mk("P1", 0, ""),
		mk("E1", 1, "Sales"),
		mk("E2", 2, "Sales"),
		mk("E3", 3, "Manuf"),
	)
	st, err := dbpl.OpenStore(filepath.Join(dir, "company.log"))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Bind("people", people, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Commit(); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st2, err := dbpl.OpenStore(filepath.Join(dir, "company.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	root, ok := st2.Root("people")
	if !ok {
		t.Fatal("people lost")
	}
	reopened := root.Value.(*value.List)

	// --- Derived extents over the reopened objects. ----------------------
	db := core.New(core.StrategyIndexed)
	for _, p := range reopened.Elems {
		db.InsertValue(p)
	}
	if got := len(db.Get(personT)); got != 4 {
		t.Errorf("Get[Person] = %d, want 4", got)
	}
	if got := len(db.Get(employeeT)); got != 3 {
		t.Errorf("Get[Employee] = %d, want 3", got)
	}

	// --- The class baseline over the same objects agrees. ----------------
	s := class.NewSchema()
	pc := s.MustDeclare("Person", class.VariableClass, "{Name: String}")
	ec := s.MustDeclare("Employee", class.VariableClass,
		"{Name: String, Empno: Int, Dept: String}", "Person")
	for _, p := range reopened.Elems {
		rec := p.(*value.Record)
		cls := pc
		if _, isEmp := rec.Get("Empno"); isEmp {
			cls = ec
		}
		if _, err := s.NewObject(cls, rec); err != nil {
			t.Fatal(err)
		}
	}
	pe, _ := pc.Extent()
	ee, _ := ec.Extent()
	if len(pe) != len(db.Get(personT)) || len(ee) != len(db.Get(employeeT)) {
		t.Error("declared class extents disagree with derived extents")
	}

	// --- Relational view: join with departments, aggregate, check an FD. -
	emps := relation.New()
	for _, p := range db.GetValues(employeeT) {
		emps.Insert(p)
	}
	depts := relation.New(
		dbpl.Rec("Dept", dbpl.Str("Sales"), "Floor", dbpl.IntV(3)),
		dbpl.Rec("Dept", dbpl.Str("Manuf"), "Floor", dbpl.IntV(1)),
	)
	joined := relation.JoinFast(emps, depts)
	if joined.Len() != 3 {
		t.Errorf("join = %d members, want 3", joined.Len())
	}
	byDept, err := relation.GroupBy(joined, []string{"Dept"}, relation.CountAll("N"))
	if err != nil {
		t.Fatal(err)
	}
	if !byDept.Contains(dbpl.Rec("Dept", dbpl.Str("Sales"), "N", dbpl.IntV(2))) {
		t.Errorf("group-by = %s", byDept)
	}
	if !fd.SatisfiedGen(joined, fd.Dep("Dept", "Floor")) {
		t.Error("Dept → Floor should hold on the joined relation")
	}
	if !fd.SatisfiedGen(joined, fd.Dep("Empno", "Name")) {
		t.Error("Empno → Name should hold")
	}

	// --- The language over the same store: a recompiled program sees the
	// data at a supertype view and queries it with get. -------------------
	in := dbpl.NewInterp(nil)
	in.Intrinsic = st2
	rs, err := in.Run(`
		type Person = {Name: String};
		persistent people : List[Person] = [];
		length(get[Person](map(fun(p: Person): Dynamic is dynamic p, people)))
	`)
	if err != nil {
		t.Fatal(err)
	}
	if !dbpl.EqualValues(rs[len(rs)-1].Value, dbpl.IntV(4)) {
		t.Errorf("language view = %s, want 4", rs[len(rs)-1].Value)
	}

	// --- Transient memo fields set through any view stay out of the store.
	reopened.Elems[1].(*value.Record).Set("_cache", dbpl.IntV(1))
	stats, err := st2.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if stats.NodesWritten != 0 {
		t.Errorf("transient-only commit wrote %d nodes", stats.NodesWritten)
	}
}
