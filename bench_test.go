// Benchmarks regenerating every experiment in DESIGN.md §4 (E1–E10). The
// paper contains one figure and no numeric tables; E1 reproduces the figure
// and the rest operationalize the paper's qualitative performance claims.
// cmd/benchreport prints the same experiments as readable tables.
package dbpl_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"dbpl/internal/class"
	"dbpl/internal/core"
	"dbpl/internal/dynamic"
	"dbpl/internal/fd"
	"dbpl/internal/lang"
	"dbpl/internal/persist/codec"
	"dbpl/internal/persist/intrinsic"
	"dbpl/internal/persist/replicating"
	"dbpl/internal/persist/snapshot"
	"dbpl/internal/relation"
	"dbpl/internal/types"
	"dbpl/internal/value"
)

// ---------------------------------------------------------------------------
// Shared workload generators
// ---------------------------------------------------------------------------

var (
	benchPersonT   = types.MustParse("{Name: String, Address: {City: String}}")
	benchEmployeeT = types.MustParse("{Name: String, Address: {City: String}, Empno: Int, Dept: String}")
)

func benchPerson(i int) *value.Record {
	return value.Rec("Name", value.String(fmt.Sprintf("P%06d", i)),
		"Address", value.Rec("City", value.String("Austin")))
}

func benchEmployee(i int) *value.Record {
	r := benchPerson(i)
	r.Set("Empno", value.Int(int64(i)))
	r.Set("Dept", value.String([]string{"Sales", "Manuf", "Admin"}[i%3]))
	return r
}

// fillMixed inserts n objects of which selectivity*n are employees, the
// rest plain persons.
func fillMixed(db *core.Database, n int, selectivity float64) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < n; i++ {
		// i == 0 is always an employee so every (n, selectivity) cell has a
		// non-empty result.
		if i == 0 || rng.Float64() < selectivity {
			db.InsertValue(benchEmployee(i))
		} else {
			db.InsertValue(benchPerson(i))
		}
	}
}

// ---------------------------------------------------------------------------
// E1 — Figure 1: the generalized natural join
// ---------------------------------------------------------------------------

func BenchmarkFigure1Join(b *testing.B) {
	r1, r2 := relation.Figure1R1(), relation.Figure1R2()
	want := relation.Figure1Result()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		got := relation.Join(r1, r2)
		if got.Len() != want.Len() {
			b.Fatalf("join produced %d tuples, want %d", got.Len(), want.Len())
		}
	}
}

// Scaled-up Figure 1: partial employee/department relations of growing size.
func BenchmarkGeneralizedJoin(b *testing.B) {
	for _, n := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			emp := relation.New()
			dept := relation.New()
			for i := 0; i < n; i++ {
				emp.Insert(value.Rec("Name", value.String(fmt.Sprintf("E%d", i)),
					"Dept", value.String(fmt.Sprintf("D%d", i%10))))
			}
			for i := 0; i < 10; i++ {
				dept.Insert(value.Rec("Dept", value.String(fmt.Sprintf("D%d", i)),
					"Addr", value.Rec("State", value.String("PA"))))
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				relation.Join(emp, dept)
			}
		})
	}
}

// ---------------------------------------------------------------------------
// E2 — Get strategies: scan vs maintained extents
// ---------------------------------------------------------------------------

func BenchmarkGetScan(b *testing.B) {
	benchGet(b, core.StrategyScan)
}

func BenchmarkGetExtent(b *testing.B) {
	benchGet(b, core.StrategyIndexed)
}

func benchGet(b *testing.B, strategy core.Strategy) {
	for _, n := range []int{100, 1000, 10000} {
		for _, sel := range []float64{0.01, 0.10, 0.50} {
			b.Run(fmt.Sprintf("n=%d/sel=%.2f", n, sel), func(b *testing.B) {
				db := core.New(strategy)
				fillMixed(db, n, sel)
				db.Get(benchEmployeeT) // build the extent outside the timer
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if got := db.Get(benchEmployeeT); len(got) == 0 && sel > 0 {
						b.Fatal("empty result")
					}
				}
			})
		}
	}
}

// BenchmarkGetScanWorkers sweeps the scan fan-out: the same Get against the
// same database with the shard worker pool bounded at 1, 2, 4 and 8. The
// n=100 rows sit below the engine's parallel threshold and stay sequential
// by design; the larger rows show the fan-out win (E11).
func BenchmarkGetScanWorkers(b *testing.B) {
	for _, n := range []int{10000, 100000} {
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("n=%d/workers=%d", n, workers), func(b *testing.B) {
				db := core.New(core.StrategyScan)
				fillMixed(db, n, 0.10)
				db.SetScanWorkers(workers)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if got := db.Get(benchEmployeeT); len(got) == 0 {
						b.Fatal("empty result")
					}
				}
			})
		}
	}
}

// BenchmarkGetClass is the explicit class-extent baseline (Adaplex): the
// extent is read directly off the class.
func BenchmarkGetClass(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		for _, sel := range []float64{0.01, 0.10, 0.50} {
			b.Run(fmt.Sprintf("n=%d/sel=%.2f", n, sel), func(b *testing.B) {
				s := class.NewSchema()
				person := s.MustDeclare("Person", class.VariableClass,
					"{Name: String, Address: {City: String}}")
				employee := s.MustDeclare("Employee", class.VariableClass,
					"{Name: String, Address: {City: String}, Empno: Int, Dept: String}", "Person")
				_ = person
				rng := rand.New(rand.NewSource(42))
				for i := 0; i < n; i++ {
					if rng.Float64() < sel {
						if _, err := s.NewObject(employee, benchEmployee(i)); err != nil {
							b.Fatal(err)
						}
					} else if _, err := s.NewObject(person, benchPerson(i)); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := employee.Extent(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// ---------------------------------------------------------------------------
// E3 — Bill of materials: naive vs memoized TotalCost on a DAG
// ---------------------------------------------------------------------------

// bomDAG builds a maximally shared parts DAG of the given depth.
func bomDAG(depth int) *value.Record {
	part := value.Rec("IsBase", value.Bool(true), "PurchasePrice", value.Float(1),
		"ManufacturingCost", value.Float(0), "Components", value.NewList())
	for i := 1; i <= depth; i++ {
		part = value.Rec("IsBase", value.Bool(false), "PurchasePrice", value.Float(0),
			"ManufacturingCost", value.Float(1),
			"Components", value.NewList(
				value.Rec("SubPart", part, "Qty", value.Int(1)),
				value.Rec("SubPart", part, "Qty", value.Int(1))))
	}
	return part
}

func bomCost(p *value.Record, memo bool) float64 {
	if bool(p.MustGet("IsBase").(value.Bool)) {
		return float64(p.MustGet("PurchasePrice").(value.Float))
	}
	if memo {
		if m, ok := p.Get("_cost"); ok {
			return float64(m.(value.Float))
		}
	}
	cost := float64(p.MustGet("ManufacturingCost").(value.Float))
	for _, c := range p.MustGet("Components").(*value.List).Elems {
		comp := c.(*value.Record)
		cost += bomCost(comp.MustGet("SubPart").(*value.Record), memo) *
			float64(comp.MustGet("Qty").(value.Int))
	}
	if memo {
		p.Set("_cost", value.Float(cost))
	}
	return cost
}

func clearMemos(p *value.Record) {
	p.Delete("_cost")
	for _, c := range p.MustGet("Components").(*value.List).Elems {
		clearMemos(c.(*value.Record).MustGet("SubPart").(*value.Record))
	}
}

func BenchmarkBOMNaive(b *testing.B) {
	for _, depth := range []int{8, 12, 16, 20} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			root := bomDAG(depth)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bomCost(root, false)
			}
		})
	}
}

func BenchmarkBOMMemo(b *testing.B) {
	// The memo reset is timed along with the costing: both are linear in
	// the number of distinct parts, so the measured growth is the memoized
	// algorithm's. (Per-iteration StopTimer would distort wall time far
	// more than the O(depth) reset does.)
	for _, depth := range []int{8, 12, 16, 20} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			root := bomDAG(depth)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				clearMemos(root)
				bomCost(root, true)
			}
		})
	}
}

// ---------------------------------------------------------------------------
// E4 — The three forms of persistence
// ---------------------------------------------------------------------------

// benchWorld builds a world of n independent records plus a root list.
func benchWorld(n int) (*value.List, []*value.Record) {
	lst := value.NewList()
	recs := make([]*value.Record, n)
	for i := 0; i < n; i++ {
		recs[i] = benchEmployee(i)
		lst.Append(recs[i])
	}
	return lst, recs
}

func BenchmarkSnapshotSave(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			world, _ := benchWorld(n)
			env := snapshot.NewEnvironment()
			env.Bind("db", world)
			env.Bind("scratch", value.NewList(value.Int(1)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var buf bytes.Buffer
				if err := snapshot.Save(&buf, env); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkExtern(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			world, _ := benchWorld(n)
			st, err := replicating.Open(b.TempDir())
			if err != nil {
				b.Fatal(err)
			}
			d := dynamic.Make(world)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := st.Extern("world", d); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkIntern(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			world, _ := benchWorld(n)
			st, err := replicating.Open(b.TempDir())
			if err != nil {
				b.Fatal(err)
			}
			if err := st.Extern("world", dynamic.Make(world)); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := st.Intern("world"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkIntrinsicCommitDelta measures the incremental commit: a fraction
// of the world is mutated between commits, and only those nodes are
// rewritten.
func BenchmarkIntrinsicCommitDelta(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		for _, frac := range []float64{0.01, 0.10} {
			b.Run(fmt.Sprintf("n=%d/dirty=%.2f", n, frac), func(b *testing.B) {
				world, recs := benchWorld(n)
				st, err := intrinsic.Open(filepath.Join(b.TempDir(), "s.log"))
				if err != nil {
					b.Fatal(err)
				}
				defer st.Close()
				if err := st.Bind("world", world, nil); err != nil {
					b.Fatal(err)
				}
				if _, err := st.Commit(); err != nil {
					b.Fatal(err)
				}
				dirty := int(frac * float64(n))
				if dirty == 0 {
					dirty = 1
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for j := 0; j < dirty; j++ {
						recs[(i*dirty+j)%n].Set("Empno", value.Int(int64(i*1000+j)))
					}
					if _, err := st.Commit(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkIntrinsicCommitFull is the ablation: every node rewritten every
// commit (simulated by Compact, which rewrites the full reachable heap).
func BenchmarkIntrinsicCommitFull(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			world, recs := benchWorld(n)
			st, err := intrinsic.Open(filepath.Join(b.TempDir(), "s.log"))
			if err != nil {
				b.Fatal(err)
			}
			defer st.Close()
			if err := st.Bind("world", world, nil); err != nil {
				b.Fatal(err)
			}
			if _, err := st.Commit(); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				recs[i%n].Set("Empno", value.Int(int64(i)))
				if _, err := st.Compact(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// E5 — schema evolution is exercised by tests; here we measure OpenAs cost
// ---------------------------------------------------------------------------

func BenchmarkOpenAs(b *testing.B) {
	st, err := intrinsic.Open(filepath.Join(b.TempDir(), "s.log"))
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	world, _ := benchWorld(100)
	if err := st.Bind("DB", world, nil); err != nil {
		b.Fatal(err)
	}
	view := types.NewList(types.MustParse("{Name: String}"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.OpenAs("DB", view); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// E6 — keyed vs cochain insertion
// ---------------------------------------------------------------------------

func BenchmarkInsertKeyed(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r := relation.NewKeyed("Name")
				for j := 0; j < n; j++ {
					if _, err := r.Insert(benchEmployee(j)); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

func BenchmarkInsertCochain(b *testing.B) {
	for _, n := range []int{100, 1000} { // O(n²): keep sizes modest
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r := relation.New()
				for j := 0; j < n; j++ {
					if _, err := r.Insert(benchEmployee(j)); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// E7 — type-level computation
// ---------------------------------------------------------------------------

func wideRecord(width int) types.Type {
	fs := make([]types.Field, width)
	for i := range fs {
		fs[i] = types.Field{Label: fmt.Sprintf("F%04d", i), Type: types.Int}
	}
	return types.NewRecord(fs...)
}

func deepRecord(depth int) types.Type {
	t := types.Type(types.Int)
	for i := 0; i < depth; i++ {
		t = types.NewRecord(types.Field{Label: "Next", Type: t}, types.Field{Label: "V", Type: types.Int})
	}
	return t
}

func BenchmarkSubtypeRecordWidth(b *testing.B) {
	for _, w := range []int{4, 16, 64, 256} {
		b.Run(fmt.Sprintf("w=%d", w), func(b *testing.B) {
			sub, super := wideRecord(w), wideRecord(w/2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if !types.SubtypeUncached(sub, super) {
					b.Fatal("subtype failed")
				}
			}
		})
	}
}

func BenchmarkSubtypeRecordDepth(b *testing.B) {
	for _, d := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			t1, t2 := deepRecord(d), deepRecord(d)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if !types.SubtypeUncached(t1, t2) {
					b.Fatal("subtype failed")
				}
			}
		})
	}
}

func BenchmarkSubtypeQuantified(b *testing.B) {
	s := types.MustParse("forall t <= {Name: String, Empno: Int} . t -> List[exists u <= t . u]")
	u := types.MustParse("forall t <= {Name: String, Empno: Int} . t -> List[exists u <= t . u]")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !types.SubtypeUncached(s, u) {
			b.Fatal("subtype failed")
		}
	}
}

// BenchmarkSubtypeCached shows the effect of the verdict cache (DESIGN.md
// ablation).
func BenchmarkSubtypeCached(b *testing.B) {
	sub, super := wideRecord(256), wideRecord(128)
	types.Subtype(sub, super) // warm
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !types.Subtype(sub, super) {
			b.Fatal("subtype failed")
		}
	}
}

func BenchmarkSubtypeRecursive(b *testing.B) {
	s := types.MustParse("rec t . {Value: Int, Tag: String, Next: t}")
	u := types.MustParse("rec t . {Value: Float, Next: t}")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !types.SubtypeUncached(s, u) {
			b.Fatal("subtype failed")
		}
	}
}

// ---------------------------------------------------------------------------
// E8 — functional dependency closure
// ---------------------------------------------------------------------------

func BenchmarkFDClosure(b *testing.B) {
	for _, n := range []int{8, 32, 128} {
		b.Run(fmt.Sprintf("fds=%d", n), func(b *testing.B) {
			var fds []fd.FD
			for i := 0; i < n; i++ {
				fds = append(fds, fd.Dep(fmt.Sprintf("A%d", i), fmt.Sprintf("A%d", i+1)))
			}
			x := fd.NewAttrSet("A0")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if got := fd.Closure(x, fds); len(got) != n+1 {
					b.Fatalf("closure size %d", len(got))
				}
			}
		})
	}
}

func BenchmarkFDMinimalCover(b *testing.B) {
	var fds []fd.FD
	for i := 0; i < 16; i++ {
		fds = append(fds, fd.Dep(fmt.Sprintf("A%d", i), fmt.Sprintf("A%d,A%d", i+1, (i+2)%16)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fd.MinimalCover(fds)
	}
}

// ---------------------------------------------------------------------------
// E10 — type-as-relation extraction
// ---------------------------------------------------------------------------

func BenchmarkExtractByType(b *testing.B) {
	for _, n := range []int{100, 1000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			r := relation.New()
			for i := 0; i < n; i++ {
				if i%2 == 0 {
					r.Insert(benchEmployee(i))
				} else {
					r.Insert(benchPerson(i))
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if got := relation.ExtractByType(r, benchEmployeeT); got.Len() == 0 {
					b.Fatal("empty extraction")
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Codec ablation: tagged (type travels with value, principle P2) vs untagged
// ---------------------------------------------------------------------------

func BenchmarkCodecTagged(b *testing.B) {
	world, _ := benchWorld(1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := codec.MarshalTagged(world, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCodecUntagged(b *testing.B) {
	world, _ := benchWorld(1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := codec.MarshalValue(world); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCodecDecode(b *testing.B) {
	world, _ := benchWorld(1000)
	img, err := codec.MarshalValue(world)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := codec.UnmarshalValue(img); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// The language end to end
// ---------------------------------------------------------------------------

func BenchmarkLangGetQuery(b *testing.B) {
	in := lang.New(new(bytes.Buffer))
	var src bytes.Buffer
	src.WriteString("type Employee = {Name: String, Empno: Int};\n")
	src.WriteString("let db: List[Dynamic] = [\n")
	for i := 0; i < 200; i++ {
		if i > 0 {
			src.WriteString(",\n")
		}
		if i%2 == 0 {
			fmt.Fprintf(&src, "dynamic {Name = \"E%d\", Empno = %d}", i, i)
		} else {
			fmt.Fprintf(&src, "dynamic {Name = \"P%d\"}", i)
		}
	}
	src.WriteString("];")
	if _, err := in.Run(src.String()); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := in.Run("length(get[Employee](db))"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLangFib(b *testing.B) {
	in := lang.New(new(bytes.Buffer))
	if _, err := in.Run(
		"let rec fib = fun(n: Int): Int is if n < 2 then n else fib(n-1) + fib(n-2);"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := in.Run("fib(18)"); err != nil {
			b.Fatal(err)
		}
	}
}
