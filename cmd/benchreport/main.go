// Command benchreport regenerates every experiment in DESIGN.md §4 and
// prints paper-style tables: E1 is the paper's Figure 1 verbatim; E2–E10
// operationalize the paper's qualitative claims with measured numbers.
// EXPERIMENTS.md records a reference run with commentary.
//
// Usage:
//
//	benchreport [-quick] [-exp E2,E3]
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dbpl/client"
	"dbpl/internal/class"
	"dbpl/internal/core"
	"dbpl/internal/dynamic"
	"dbpl/internal/fd"
	"dbpl/internal/index"
	"dbpl/internal/persist/codec"
	"dbpl/internal/persist/intrinsic"
	"dbpl/internal/persist/iofault"
	"dbpl/internal/persist/replicating"
	"dbpl/internal/persist/snapshot"
	"dbpl/internal/plan"
	"dbpl/internal/relation"
	"dbpl/internal/server"
	"dbpl/internal/telemetry"
	"dbpl/internal/types"
	"dbpl/internal/value"
)

var (
	quick   = flag.Bool("quick", false, "smaller sweeps for a fast run")
	expFlag = flag.String("exp", "", "comma-separated experiments to run (default: all)")
)

func main() {
	flag.Parse()
	want := map[string]bool{}
	for _, e := range strings.Split(*expFlag, ",") {
		if e = strings.TrimSpace(strings.ToUpper(e)); e != "" {
			want[e] = true
		}
	}
	sel := func(id string) bool { return len(want) == 0 || want[id] }

	fmt.Println("dbpl experiment report — Buneman & Atkinson, SIGMOD 1986 reproduction")
	fmt.Println("=====================================================================")
	if sel("E1") {
		e1Figure1()
	}
	if sel("E2") {
		e2GetStrategies()
	}
	if sel("E3") {
		e3BillOfMaterials()
	}
	if sel("E4") {
		e4Persistence()
	}
	if sel("E5") {
		e5SchemaEvolution()
	}
	if sel("E6") {
		e6KeysVsCochains()
	}
	if sel("E7") {
		e7TypeComputation()
	}
	if sel("E8") {
		e8FunctionalDependencies()
	}
	if sel("E9") {
		e9DerivedExtents()
	}
	if sel("E10") {
		e10TypeAsRelation()
	}
	if sel("E11") {
		e11ShardedEngine()
	}
	if sel("E16") {
		e16AccessPaths()
	}
	if sel("E17") {
		e17Replication()
	}
	if sel("E18") {
		e18GroupCommit()
	}
	if sel("E19") {
		e19Failover()
	}
}

func header(id, title, claim string) {
	fmt.Printf("\n%s — %s\n", id, title)
	fmt.Println(strings.Repeat("-", 69))
	fmt.Printf("paper: %s\n\n", claim)
}

// timeIt runs f repeatedly for at least minDur and returns the per-call time.
func timeIt(f func()) time.Duration {
	minDur := 200 * time.Millisecond
	if *quick {
		minDur = 20 * time.Millisecond
	}
	f() // warm up
	n := 1
	for {
		start := time.Now()
		for i := 0; i < n; i++ {
			f()
		}
		el := time.Since(start)
		if el >= minDur || n > 1<<24 {
			return el / time.Duration(n)
		}
		n *= 2
	}
}

func sizes(full []int) []int {
	if *quick && len(full) > 2 {
		return full[:2]
	}
	return full
}

// ---------------------------------------------------------------------------

func e1Figure1() {
	header("E1", "Figure 1: a join of generalized relations",
		`the join operation "is a generalization of the natural join"`)
	r1, r2 := relation.Figure1R1(), relation.Figure1R2()
	got := relation.Join(r1, r2)
	fmt.Println("R1 =", r1)
	fmt.Println("R2 =", r2)
	fmt.Println("R1 ⋈ R2 =", got)
	if relation.Equal(got, relation.Figure1Result()) {
		fmt.Println("\n✓ exactly the paper's published result (4 tuples, cochain)")
	} else {
		fmt.Println("\n✗ MISMATCH with the published figure")
	}
	per := timeIt(func() { relation.Join(r1, r2) })
	fmt.Printf("join cost: %v per evaluation\n", per)

	// Ablation X9: all-pairs vs hash-partitioned join on a scaled-up
	// Figure 1 (same shape: employees with partial tuples ⋈ departments).
	emp, dept := relation.New(), relation.New()
	n := 1000
	if *quick {
		n = 200
	}
	for i := 0; i < n; i++ {
		m := value.Rec("Name", value.String(fmt.Sprintf("E%d", i)))
		if i%7 != 0 { // some members stay silent on Dept, like N Bug
			m.Set("Dept", value.String(fmt.Sprintf("D%d", i%20)))
		}
		emp.Insert(m)
	}
	for i := 0; i < 20; i++ {
		dept.Insert(value.Rec("Dept", value.String(fmt.Sprintf("D%d", i)),
			"Addr", value.Rec("State", value.String("PA"))))
	}
	tNaive := timeIt(func() { relation.Join(emp, dept) })
	tHashed := timeIt(func() { relation.JoinFast(emp, dept) })
	if !relation.Equal(relation.Join(emp, dept), relation.JoinFast(emp, dept)) {
		fmt.Println("✗ join strategies DISAGREE")
	}
	fmt.Printf("ablation (n=%d employees ⋈ 20 departments): all-pairs %v, hash-partitioned %v\n",
		n, tNaive, tHashed)
}

// ---------------------------------------------------------------------------

func person(i int) *value.Record {
	return value.Rec("Name", value.String(fmt.Sprintf("P%06d", i)),
		"Address", value.Rec("City", value.String("Austin")))
}

func employee(i int) *value.Record {
	r := person(i)
	r.Set("Empno", value.Int(int64(i)))
	r.Set("Dept", value.String([]string{"Sales", "Manuf", "Admin"}[i%3]))
	return r
}

var employeeT = types.MustParse("{Name: String, Address: {City: String}, Empno: Int, Dept: String}")

func e2GetStrategies() {
	header("E2", "Get[t]: scan vs maintained extents vs class extents",
		`a list-of-dynamics database is "not a very efficient solution since we
       have to traverse the whole database"; the remedy is "a set of
       (statically) typed lists with appropriate structure sharing"`)
	fmt.Printf("%8s %6s | %12s %12s %12s\n", "n", "sel", "scan", "extent", "class")
	for _, n := range sizes([]int{100, 1000, 10000, 100000}) {
		for _, selv := range []float64{0.01, 0.10, 0.50} {
			rng := rand.New(rand.NewSource(42))
			scanDB := core.New(core.StrategyScan)
			idxDB := core.New(core.StrategyIndexed)
			s := class.NewSchema()
			pc := s.MustDeclare("Person", class.VariableClass,
				"{Name: String, Address: {City: String}}")
			ec := s.MustDeclare("Employee", class.VariableClass,
				"{Name: String, Address: {City: String}, Empno: Int, Dept: String}", "Person")
			for i := 0; i < n; i++ {
				var v *value.Record
				cls := pc
				if i == 0 || rng.Float64() < selv {
					v = employee(i)
					cls = ec
				} else {
					v = person(i)
				}
				scanDB.InsertValue(v)
				idxDB.InsertValue(v)
				if _, err := s.NewObject(cls, v); err != nil {
					panic(err)
				}
			}
			idxDB.Get(employeeT) // build the extent once
			tScan := timeIt(func() { scanDB.Get(employeeT) })
			tIdx := timeIt(func() { idxDB.Get(employeeT) })
			tCls := timeIt(func() { _, _ = ec.Extent() })
			fmt.Printf("%8d %6.2f | %12v %12v %12v\n", n, selv, tScan, tIdx, tCls)
		}
	}
	fmt.Println("\nshape: scan grows with n regardless of result size; extent and class")
	fmt.Println("grow only with the result — and the derived extents match the class")
	fmt.Println("baseline without any class construct in the model.")
}

// ---------------------------------------------------------------------------

func bomDAG(depth int) *value.Record {
	part := value.Rec("IsBase", value.Bool(true), "PurchasePrice", value.Float(1),
		"ManufacturingCost", value.Float(0), "Components", value.NewList())
	for i := 1; i <= depth; i++ {
		part = value.Rec("IsBase", value.Bool(false), "PurchasePrice", value.Float(0),
			"ManufacturingCost", value.Float(1),
			"Components", value.NewList(
				value.Rec("SubPart", part, "Qty", value.Int(1)),
				value.Rec("SubPart", part, "Qty", value.Int(1))))
	}
	return part
}

func bomCost(p *value.Record, memo bool, calls *int) float64 {
	*calls++
	if bool(p.MustGet("IsBase").(value.Bool)) {
		return float64(p.MustGet("PurchasePrice").(value.Float))
	}
	if memo {
		if m, ok := p.Get("_cost"); ok {
			return float64(m.(value.Float))
		}
	}
	cost := float64(p.MustGet("ManufacturingCost").(value.Float))
	for _, c := range p.MustGet("Components").(*value.List).Elems {
		comp := c.(*value.Record)
		cost += bomCost(comp.MustGet("SubPart").(*value.Record), memo, calls) *
			float64(comp.MustGet("Qty").(value.Int))
	}
	if memo {
		p.Set("_cost", value.Float(cost))
	}
	return cost
}

func clearMemos(p *value.Record) {
	p.Delete("_cost")
	for _, c := range p.MustGet("Components").(*value.List).Elems {
		clearMemos(c.(*value.Record).MustGet("SubPart").(*value.Record))
	}
}

func e3BillOfMaterials() {
	header("E3", "bill of materials: naive vs memoized TotalCost on a DAG",
		`"when a given subpart is used in more than one way … the total cost
       will be needlessly recomputed … The way out of this is to memoize
       intermediate results" in transient fields on persistent parts`)
	depths := sizes([]int{8, 12, 16, 20})
	fmt.Printf("%6s %10s | %14s %10s | %14s %6s\n",
		"depth", "paths", "naive", "calls", "memo", "calls")
	for _, d := range depths {
		root := bomDAG(d)
		var nCalls int
		tNaive := timeIt(func() { nCalls = 0; bomCost(root, false, &nCalls) })
		var mCalls int
		tMemo := timeIt(func() { mCalls = 0; clearMemos(root); bomCost(root, true, &mCalls) })
		fmt.Printf("%6d %10d | %14v %10d | %14v %6d\n",
			d, 1<<d, tNaive, nCalls, tMemo, mCalls)
	}
	fmt.Println("\nshape: naive calls double per level (exponential); memoized calls")
	fmt.Println("stay linear in the number of distinct parts.")
}

// ---------------------------------------------------------------------------

func world(n int) (*value.List, []*value.Record) {
	lst := value.NewList()
	recs := make([]*value.Record, n)
	for i := 0; i < n; i++ {
		recs[i] = employee(i)
		lst.Append(recs[i])
	}
	return lst, recs
}

func e4Persistence() {
	header("E4", "the three forms of persistence",
		`all-or-nothing copies the whole image; replicating extern/intern copies
       and splits shared values ("update anomalies and wasted storage");
       intrinsic persistence commits reachable changes incrementally`)
	dir, err := os.MkdirTemp("", "dbpl-bench-")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	fmt.Printf("%8s | %12s %12s %12s %14s %14s\n",
		"n", "snapshot", "extern", "intern", "commit(1%)", "commit(all)")
	for _, n := range sizes([]int{100, 1000, 10000}) {
		w, recs := world(n)
		env := snapshot.NewEnvironment()
		env.Bind("db", w)
		tSnap := timeIt(func() {
			var buf bytes.Buffer
			if err := snapshot.Save(&buf, env); err != nil {
				panic(err)
			}
		})

		rep, err := replicating.Open(filepath.Join(dir, fmt.Sprintf("rep%d", n)))
		if err != nil {
			panic(err)
		}
		d := dynamic.Make(w)
		tExt := timeIt(func() {
			if err := rep.Extern("w", d); err != nil {
				panic(err)
			}
		})
		tInt := timeIt(func() {
			if _, err := rep.Intern("w"); err != nil {
				panic(err)
			}
		})

		st, err := intrinsic.Open(filepath.Join(dir, fmt.Sprintf("intr%d.log", n)))
		if err != nil {
			panic(err)
		}
		if err := st.Bind("w", w, nil); err != nil {
			panic(err)
		}
		if _, err := st.Commit(); err != nil {
			panic(err)
		}
		dirty := n / 100
		if dirty == 0 {
			dirty = 1
		}
		i := 0
		var deltaNodes int
		tDelta := timeIt(func() {
			for j := 0; j < dirty; j++ {
				recs[(i+j)%n].Set("Empno", value.Int(int64(i*7+j)))
			}
			i += dirty
			stats, err := st.Commit()
			if err != nil {
				panic(err)
			}
			deltaNodes = stats.NodesWritten
		})
		var fullNodes int
		tFull := timeIt(func() {
			recs[i%n].Set("Empno", value.Int(int64(i)))
			i++
			stats, err := st.Compact()
			if err != nil {
				panic(err)
			}
			fullNodes = stats.NodesKept
		})
		st.Close()
		fmt.Printf("%8d | %12v %12v %12v %14v %14v   (delta wrote %d nodes, full rewrote %d)\n",
			n, tSnap, tExt, tInt, tDelta, tFull, deltaNodes, fullNodes)
	}

	// The correctness half: the update anomaly and its absence.
	fmt.Println("\ncorrectness demonstrations:")
	rep, err := replicating.Open(filepath.Join(dir, "anomaly"))
	if err != nil {
		panic(err)
	}
	c := value.Rec("Balance", value.Int(100))
	_ = rep.ExternValue("a", value.Rec("Ref", c))
	_ = rep.ExternValue("b", value.Rec("Ref", c))
	ia, _ := rep.Intern("a")
	ia.Value().(*value.Record).MustGet("Ref").(*value.Record).Set("Balance", value.Int(0))
	_ = rep.Extern("a", ia)
	ib, _ := rep.Intern("b")
	bBal, _ := ib.Value().(*value.Record).MustGet("Ref").(*value.Record).Get("Balance")
	fmt.Printf("  replicating: c updated via a; b still sees Balance=%s  (update anomaly)\n", bBal)

	st, err := intrinsic.Open(filepath.Join(dir, "shared.log"))
	if err != nil {
		panic(err)
	}
	c2 := value.Rec("Balance", value.Int(100))
	_ = st.Bind("a", value.Rec("Ref", c2), nil)
	_ = st.Bind("b", value.Rec("Ref", c2), nil)
	_, _ = st.Commit()
	st.Close()
	st2, _ := intrinsic.Open(filepath.Join(dir, "shared.log"))
	ra, _ := st2.Root("a")
	rb, _ := st2.Root("b")
	ra.Value.(*value.Record).MustGet("Ref").(*value.Record).Set("Balance", value.Int(0))
	bBal2, _ := rb.Value.(*value.Record).MustGet("Ref").(*value.Record).Get("Balance")
	fmt.Printf("  intrinsic:   c updated via a; b sees Balance=%s  (sharing preserved)\n", bBal2)
	st2.Close()
}

// ---------------------------------------------------------------------------

func e5SchemaEvolution() {
	header("E5", "schema evolution at a persistent handle",
		`recompiling with DBType' succeeds when the stored type is a subtype
       (a view) or consistent (schema enrichment to the meet); otherwise fails`)
	dir, err := os.MkdirTemp("", "dbpl-evo-")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	stored := types.MustParse("{Employees: Set[{Name: String, Empno: Int}]}")
	val := value.Rec("Employees", value.NewSet(
		value.Rec("Name", value.String("J Doe"), "Empno", value.Int(1))))

	cases := []struct {
		label string
		want  types.Type
	}{
		{"same type", stored},
		{"supertype (view)", types.MustParse("{Employees: Set[{Name: String}]}")},
		{"consistent (enrich)", types.MustParse("{Employees: Set[{Name: String, Empno: Int}], Departments: Set[{Dept: String}]}")},
		{"inconsistent", types.MustParse("{Employees: Int}")},
	}
	fmt.Printf("%-22s | %s\n", "requested DBType'", "outcome")
	for _, cse := range cases {
		st, err := intrinsic.Open(filepath.Join(dir, strings.ReplaceAll(cse.label, " ", "")+".log"))
		if err != nil {
			panic(err)
		}
		_ = st.Bind("DB", val, stored)
		_, err = st.OpenAs("DB", cse.want)
		out := "opened"
		if err != nil {
			out = err.Error()
			if i := strings.Index(out, ": "); i > 0 {
				out = out[i+2:]
			}
			// The enrichment path requires migrating the value to the meet
			// first; do so and retry, as a real recompiled program would.
			if strings.Contains(out, "migration") {
				if meet, ok := types.Meet(stored, cse.want); ok {
					migrated := value.Copy(val).(*value.Record)
					migrated.Set("Departments", value.NewSet())
					if value.Conforms(migrated, meet) {
						_ = st.Bind("DB", migrated, stored)
						if _, err2 := st.OpenAs("DB", cse.want); err2 == nil {
							out = "migrated, then opened; schema enriched to the meet"
						}
					}
				}
			}
		} else if r, _ := st.Root("DB"); !types.Equal(r.Declared, stored) {
			out = "opened; schema enriched to " + r.Declared.String()
		}
		fmt.Printf("%-22s | %s\n", cse.label, out)
		st.Close()
	}
}

// ---------------------------------------------------------------------------

func e6KeysVsCochains() {
	header("E6", "keyed insertion vs cochain (subsumption) insertion",
		`"the imposition of keys will also prevent comparable values from
       coexisting in the same set" — and admits a hash index, while the
       unkeyed cochain must compare against every member`)
	fmt.Printf("%8s | %14s %14s\n", "n", "keyed", "cochain")
	for _, n := range sizes([]int{100, 1000, 4000}) {
		tKeyed := timeIt(func() {
			r := relation.NewKeyed("Name")
			for j := 0; j < n; j++ {
				if _, err := r.Insert(employee(j)); err != nil {
					panic(err)
				}
			}
		})
		tCochain := timeIt(func() {
			r := relation.New()
			for j := 0; j < n; j++ {
				if _, err := r.Insert(employee(j)); err != nil {
					panic(err)
				}
			}
		})
		fmt.Printf("%8d | %14v %14v\n", n, tKeyed, tCochain)
	}
	fmt.Println("\nshape: keyed insertion is near-linear; cochain insertion is quadratic.")
}

// ---------------------------------------------------------------------------

func e7TypeComputation() {
	header("E7", "type-level computation stays cheap and terminates",
		`"the compiler must be able to manipulate type expressions and decide if
       they are equivalent … there are no non-terminating computations at the
       level of types"`)
	wide := func(w int) types.Type {
		fs := make([]types.Field, w)
		for i := range fs {
			fs[i] = types.Field{Label: fmt.Sprintf("F%04d", i), Type: types.Int}
		}
		return types.NewRecord(fs...)
	}
	fmt.Printf("%-34s | %12s %12s\n", "check", "uncached", "cached")
	for _, w := range sizes([]int{16, 64, 256}) {
		sub, super := wide(w), wide(w/2)
		tU := timeIt(func() { types.SubtypeUncached(sub, super) })
		types.Subtype(sub, super)
		tC := timeIt(func() { types.Subtype(sub, super) })
		fmt.Printf("record width %-21d | %12v %12v\n", w, tU, tC)
	}
	q := types.MustParse("forall t <= {Name: String} . t -> List[exists u <= t . u]")
	tQ := timeIt(func() { types.SubtypeUncached(q, q) })
	fmt.Printf("%-34s | %12v\n", "quantified (Get's type)", tQ)
	r1 := types.MustParse("rec t . {Value: Int, Tag: String, Next: t}")
	r2 := types.MustParse("rec t . {Value: Float, Next: t}")
	tR := timeIt(func() { types.SubtypeUncached(r1, r2) })
	fmt.Printf("%-34s | %12v\n", "equi-recursive (Part-style)", tR)
}

// ---------------------------------------------------------------------------

func e8FunctionalDependencies() {
	header("E8", "functional dependency theory over the domain ordering",
		`"the interaction of these two orderings allows us [to] derive the basic
       results of the theory of functional dependencies"`)
	fds := []fd.FD{
		fd.Dep("Empno", "Name,Dept"),
		fd.Dep("Dept", "Floor"),
		fd.Dep("Name,Dept", "Empno"),
	}
	schema := fd.NewAttrSet("Empno", "Name", "Dept", "Floor")
	fmt.Println("schema:", schema, " FDs:", fds)
	fmt.Println("{Empno}+ =", fd.Closure(fd.NewAttrSet("Empno"), fds))
	fmt.Println("Empno -> Floor implied:", fd.Implies(fds, fd.Dep("Empno", "Floor")))
	fmt.Println("Floor -> Dept implied: ", fd.Implies(fds, fd.Dep("Floor", "Dept")))
	keys := fd.CandidateKeys(schema, fds)
	ks := make([]string, len(keys))
	for i, k := range keys {
		ks[i] = k.String()
	}
	sort.Strings(ks)
	fmt.Println("candidate keys:", ks)
	mc := fd.MinimalCover(fds)
	fmt.Println("minimal cover: ", mc)

	// Satisfaction on a generalized relation with partial tuples.
	gen := relation.New(
		value.Rec("Empno", value.Int(1), "Name", value.String("J Doe"), "Dept", value.String("Sales")),
		value.Rec("Empno", value.Int(2), "Name", value.String("M Dee")), // silent on Dept
	)
	fmt.Println("generalized relation satisfies Empno -> Dept:",
		fd.SatisfiedGen(gen, fd.Dep("Empno", "Dept")))

	var big []fd.FD
	for i := 0; i < 128; i++ {
		big = append(big, fd.Dep(fmt.Sprintf("A%d", i), fmt.Sprintf("A%d", i+1)))
	}
	t := timeIt(func() { fd.Closure(fd.NewAttrSet("A0"), big) })
	fmt.Printf("closure over 128 FDs: %v\n", t)
}

// ---------------------------------------------------------------------------

func e9DerivedExtents() {
	header("E9", "the class hierarchy derived from the type hierarchy",
		`"there is no need for a distinguished family of types for which
       inheritance is defined, nor is it necessary to have unique extents
       associated with these types"`)
	db := core.New(core.StrategyScan)
	rng := rand.New(rand.NewSource(7))
	counts := map[string]int{}
	for i := 0; i < 2000; i++ {
		r := person(i)
		kind := "person"
		if rng.Intn(2) == 0 {
			r.Set("Empno", value.Int(int64(i)))
			r.Set("Dept", value.String("Sales"))
			kind = "employee"
		}
		if rng.Intn(4) == 0 {
			r.Set("StudentID", value.Int(int64(i)))
			if kind == "employee" {
				kind = "both"
			} else {
				kind = "student"
			}
		}
		counts[kind]++
		db.InsertValue(r)
	}
	personT := types.MustParse("{Name: String}")
	studentT := types.MustParse("{Name: String, StudentID: Int}")
	bothT := types.MustParse("{Name: String, Empno: Int, StudentID: Int}")
	fmt.Printf("population: %v\n", counts)
	fmt.Printf("Get[Person]          = %d (expect %d)\n", len(db.Get(personT)), 2000)
	fmt.Printf("Get[Employee]        = %d (expect %d)\n", len(db.Get(employeeTShort())),
		counts["employee"]+counts["both"])
	fmt.Printf("Get[Student]         = %d (expect %d)\n", len(db.Get(studentT)),
		counts["student"]+counts["both"])
	fmt.Printf("Get[StudentEmployee] = %d (expect %d)\n", len(db.Get(bothT)), counts["both"])
	fmt.Println("containment Get[Employee] ⊆ Get[Person]: holds by Employee ≤ Person")
}

func employeeTShort() types.Type {
	return types.MustParse("{Name: String, Empno: Int, Dept: String}")
}

// ---------------------------------------------------------------------------

func e10TypeAsRelation() {
	header("E10", "a type is a very large relation",
		`"the type {Name: String; Age: Int} can be seen as a very large relation
       … the join of this relation with a relation R … extract[s] all the
       objects in R whose type is a subtype" — the class-extraction operation`)
	r := relation.New()
	for i := 0; i < 1000; i++ {
		if i%2 == 0 {
			r.Insert(employee(i))
		} else {
			r.Insert(person(i))
		}
	}
	extracted := relation.ExtractByType(r, employeeT)
	fmt.Printf("|R| = %d, |R ⋈ Employee-type| = %d\n", r.Len(), extracted.Len())
	db := core.New(core.StrategyScan)
	for _, m := range r.Members() {
		db.InsertValue(m)
	}
	agree := extracted.Len() == len(db.Get(employeeT))
	fmt.Println("agrees with the generic Get:", agree)
	t := timeIt(func() { relation.ExtractByType(r, employeeT) })
	fmt.Printf("extraction cost over 1000 objects: %v\n", t)

	// Serialization principle P2, measured: tagged vs untagged images.
	w, _ := world(1000)
	tagged, _ := codec.MarshalTagged(w, nil)
	plain, _ := codec.MarshalValue(w)
	fmt.Printf("codec: tagged image %d bytes vs untagged %d bytes (type travels with value)\n",
		len(tagged), len(plain))
}

// ---------------------------------------------------------------------------

func e11ShardedEngine() {
	header("E11", "interned types and the sharded copy-on-write engine",
		`the Get hot path after the engine refactor: hash-consed type handles
       make repeated type computation pointer work, and the sharded COW store
       serves Get without taking a lock`)

	// Interning: the first derivation for a structure is structural; every
	// check after it — on the same pointer or any alpha-equivalent type — is
	// an atomic load plus a pointer-keyed cache hit.
	wide := func(w int) types.Type {
		fs := make([]types.Field, w)
		for i := range fs {
			fs[i] = types.Field{Label: fmt.Sprintf("F%04d", i), Type: types.Int}
		}
		return types.NewRecord(fs...)
	}
	fmt.Printf("%-34s | %14s %14s\n", "subtype check (record width)", "uncached", "interned+cached")
	for _, w := range sizes([]int{16, 64, 256}) {
		sub, super := wide(w), wide(w/2)
		tU := timeIt(func() { types.SubtypeUncached(sub, super) })
		types.Subtype(sub, super)
		tC := timeIt(func() { types.Subtype(sub, super) })
		fmt.Printf("w = %-30d | %14v %14v\n", w, tU, tC)
	}
	alpha := types.MustParse("forall t <= {Name: String} . t")
	beta := types.MustParse("forall u <= {Name: String} . u")
	fmt.Printf("alpha-equivalent quantified types share one handle: %v\n",
		types.Intern(alpha) == types.Intern(beta))

	// Scan fan-out over the shards. On a single-CPU host the worker counts
	// collapse to the same wall clock; the table is still the ablation knob.
	n := 50000
	if *quick {
		n = 5000
	}
	rng := rand.New(rand.NewSource(42))
	db := core.New(core.StrategyScan)
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.10 {
			db.InsertValue(employee(i))
		} else {
			db.InsertValue(person(i))
		}
	}
	fmt.Printf("\n%-22s | %12s   (GOMAXPROCS=%d)\n",
		fmt.Sprintf("scan Get, n=%d", n), "per call", runtime.GOMAXPROCS(0))
	for _, workers := range []int{1, 2, 4, 8} {
		db.SetScanWorkers(workers)
		t := timeIt(func() { db.Get(employeeT) })
		fmt.Printf("workers = %-12d | %12v\n", workers, t)
	}
	db.SetScanWorkers(0)

	// Fork is O(shards), not O(n): both sides keep the published slices and
	// copy lazily on the next write.
	fmt.Printf("\n%-22s | %12s\n", "Fork()", "per call")
	for _, fn := range sizes([]int{1000, 100000}) {
		fdb := core.New(core.StrategyScan)
		for i := 0; i < fn; i++ {
			fdb.InsertValue(person(i))
		}
		t := timeIt(func() { fdb.Fork() })
		fmt.Printf("n = %-18d | %12v\n", fn, t)
	}
	fmt.Println("\nshape: subtype cost is paid once per distinct type pair; scan workers")
	fmt.Println("are bounded by available CPUs; fork cost is flat in database size.")
}

// ---------------------------------------------------------------------------

func e16AccessPaths() {
	header("E16", "cost-based access paths: scan vs flat extent vs field index",
		`E11 traded the seed's one-flat-slice-per-type extents for 16 sharded
       slices re-merged per read (~4x on high-selectivity Get); the
       internal/index maintained extents restore the flat slice, and the
       cost model picks the winning path per regime instead of a threshold`)
	n := 10000
	if *quick {
		n = 2000
	}
	model := plan.NewModel(telemetry.NewRegistry())
	empIn := types.Intern(employeeT)

	// packAll is what the server's extent path actually serves: the flat
	// entries converted to Packed, so the comparison against db.Get (which
	// also returns Packed) is apples to apples.
	packAll := func(entries []index.Entry) []core.Packed {
		out := make([]core.Packed, len(entries))
		for i, e := range entries {
			out[i] = core.Packed{Value: e.Dyn.Value(), Witness: e.Dyn.Type()}
		}
		return out
	}

	// Regime 1: few member types (person/employee), selectivity sweep. The
	// planner should pick the extent, which now costs O(result) like the
	// seed's flat slices — not the sharded re-merge.
	fmt.Printf("regime 1: two member types, n=%d — the E11 regression row\n", n)
	fmt.Printf("%6s | %12s %12s %12s | planner (cold priors)\n",
		"sel", "scan", "sharded(E11)", "flat extent")
	for _, selv := range []float64{0.01, 0.10, 0.50} {
		rng := rand.New(rand.NewSource(42))
		scanDB := core.New(core.StrategyScan)
		shardDB := core.New(core.StrategyIndexed)
		var ops []index.Op
		for i := 0; i < n; i++ {
			var v *value.Record
			if i == 0 || rng.Float64() < selv {
				v = employee(i)
			} else {
				v = person(i)
			}
			scanDB.InsertValue(v)
			shardDB.InsertValue(v)
			ops = append(ops, index.Op{Add: dynamic.Make(v)})
		}
		set, _ := index.NewSet().Apply(ops)
		shardDB.Get(employeeT) // build the sharded extents once
		tScan := timeIt(func() { scanDB.Get(employeeT) })
		tShard := timeIt(func() { shardDB.Get(employeeT) })
		tFlat := timeIt(func() {
			entries, _ := set.GetEntries(empIn)
			packAll(entries)
		})
		p := model.PlanGet(plan.GetInput{N: set.Len(), Types: set.Types()})
		fmt.Printf("%6.2f | %12v %12v %12v | %s  (sharded/flat = %.1fx)\n",
			selv, tScan, tShard, tFlat, p.Path, float64(tShard)/float64(tFlat))
	}

	// Regime 2: every member its own record type (distinct field labels), a
	// declared index on the rare Empno field. The extent union must check
	// thousands of types; the index walks only the candidates.
	fmt.Printf("\nregime 2: %d distinct member types, index on rare field Empno (1%%)\n", n)
	rng := rand.New(rand.NewSource(7))
	scanDB := core.New(core.StrategyScan)
	var ops []index.Op
	for i := 0; i < n; i++ {
		var v *value.Record
		if i%100 == 0 {
			v = employee(i)
		} else {
			v = value.Rec("Name", value.String(fmt.Sprintf("P%06d", i)),
				fmt.Sprintf("X%05d", i), value.Int(int64(rng.Intn(10))))
		}
		scanDB.InsertValue(v)
		ops = append(ops, index.Op{Add: dynamic.Make(v)})
	}
	set, _ := index.NewSet(index.Def{Field: "Empno"}).Apply(ops)
	empnoT := types.Intern(types.MustParse("{Empno: Int}"))
	tScan := timeIt(func() { scanDB.Get(empnoT.Type()) })
	tExtent := timeIt(func() {
		entries, _ := set.GetEntries(empnoT)
		packAll(entries)
	})
	tIndex := timeIt(func() {
		cands, _ := set.Candidates("Empno")
		var out []core.Packed
		for _, e := range cands {
			if types.SubtypeInterned(e.Dyn.Interned(), empnoT) {
				out = append(out, core.Packed{Value: e.Dyn.Value(), Witness: e.Dyn.Type()})
			}
		}
		_ = out
	})
	cand, _ := set.CandidateCount("Empno")
	p := model.PlanGet(plan.GetInput{N: set.Len(), Types: set.Types(), Field: "Empno", Candidates: cand})
	fmt.Printf("%-14s | scan %v, extent-union %v, field index %v (%d candidates)\n",
		"measured", tScan, tExtent, tIndex, cand)
	fmt.Printf("%-14s | %s\n", "planner", p)

	// Regime 3: the join planner replaces the fixed "both sides >= 16"
	// threshold with the same cost discipline.
	jn := 1000
	if *quick {
		jn = 200
	}
	emp, dept := relation.New(), relation.New()
	for i := 0; i < jn; i++ {
		m := value.Rec("Name", value.String(fmt.Sprintf("E%d", i)))
		if i%7 != 0 {
			m.Set("Dept", value.String(fmt.Sprintf("D%d", i%20)))
		}
		emp.Insert(m)
	}
	for i := 0; i < 20; i++ {
		dept.Insert(value.Rec("Dept", value.String(fmt.Sprintf("D%d", i))))
	}
	jp := relation.PlanJoin(emp, dept)
	tNested := timeIt(func() { relation.Join(emp, dept) })
	tPlanned := timeIt(func() { relation.JoinPlanned(emp, dept, jp) })
	fmt.Printf("\nregime 3: join %d x 20 — nested %v, planned %v\n", jn, tNested, tPlanned)
	fmt.Printf("%-14s | %s\n", "planner", jp)

	fmt.Println("\nshape: the flat extent restores the seed's O(result) high-selectivity")
	fmt.Println("read (the sharded/flat ratio is the E11 regression repaid); the field")
	fmt.Println("index wins exactly when the type population makes extent unions wide;")
	fmt.Println("and the cold-prior planner picks the measured winner in each regime.")
}

// ---------------------------------------------------------------------------

// e17Serve boots one real server (primary or follower) on a loopback
// port, returning its address, its store (for convergence polling), and
// a blocking stop.
func e17Serve(path string, cfg server.Config) (string, *intrinsic.Store, func(), error) {
	st, err := intrinsic.Open(path)
	if err != nil {
		return "", nil, nil, err
	}
	srv, err := server.New(st, cfg)
	if err != nil {
		st.Close()
		return "", nil, nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		st.Close()
		return "", nil, nil, err
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	stop := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		<-done
		st.Close()
	}
	return ln.Addr().String(), st, stop, nil
}

func e17Converged(p, f *intrinsic.Store) {
	for f.DurableEnd() != p.DurableEnd() {
		time.Sleep(2 * time.Millisecond)
	}
}

func e17Replication() {
	header("E17", "log-shipping replication: read scaling and steady-state lag",
		`the follower serves the same planner-routed reads as the primary
       from its replayed log, so read capacity should scale with follower
       count while writes stay single-primary; replication is async, so
       the cost is a staleness window, measured here in bytes and time`)
	seed, burst, readers := 256, 100, 4
	window := 400 * time.Millisecond
	if *quick {
		seed, burst, window = 64, 25, 100*time.Millisecond
	}
	dir, err := os.MkdirTemp("", "e17-*")
	if err != nil {
		fmt.Println("e17: ", err)
		return
	}
	defer os.RemoveAll(dir)

	paddr, pst, pstop, err := e17Serve(filepath.Join(dir, "primary.log"), server.Config{})
	if err != nil {
		fmt.Println("e17: ", err)
		return
	}
	defer pstop()
	w, err := client.Dial(paddr, nil)
	if err != nil {
		fmt.Println("e17: ", err)
		return
	}
	defer w.Close()
	for i := 0; i < seed; i++ {
		name := fmt.Sprintf("r%04d", i)
		if err := w.Put(name, value.Rec("Name", value.String(name), "Empno", value.Int(int64(i))), nil); err != nil {
			fmt.Println("e17: ", err)
			return
		}
	}

	// NAMES round trips from `readers` pipelined goroutines for a fixed
	// wall window — the small-response read floor, so the number measures
	// request handling, not result encoding (that is E13's axis).
	throughput := func(c *client.Client) float64 {
		var ops atomic.Int64
		stopCh := make(chan struct{})
		var wg sync.WaitGroup
		for i := 0; i < readers; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stopCh:
						return
					default:
					}
					if _, err := c.Names(); err == nil {
						ops.Add(1)
					}
				}
			}()
		}
		time.Sleep(window)
		close(stopCh)
		wg.Wait()
		return float64(ops.Load()) / window.Seconds()
	}

	fmt.Printf("read scaling: %d pipelined readers, NAMES floor, %d roots (GOMAXPROCS=%d)\n",
		readers, seed, runtime.GOMAXPROCS(0))
	fmt.Printf("%-23s | %12s\n", "topology", "reads/sec")
	var fstores []*intrinsic.Store
	var faddrs []string
	for followers := 0; followers <= 2; followers++ {
		if followers > 0 {
			addr, fst, fstop, err := e17Serve(filepath.Join(dir, fmt.Sprintf("f%d.log", followers)),
				server.Config{Follow: paddr, ReplHeartbeat: 50 * time.Millisecond})
			if err != nil {
				fmt.Println("e17: ", err)
				return
			}
			defer fstop()
			fstores = append(fstores, fst)
			faddrs = append(faddrs, addr)
			for _, fst := range fstores {
				e17Converged(pst, fst)
			}
		}
		c, err := client.Dial(paddr, &client.Options{
			Replicas: append([]string(nil), faddrs...), ReplicaProbe: 20 * time.Millisecond})
		if err != nil {
			fmt.Println("e17: ", err)
			return
		}
		time.Sleep(100 * time.Millisecond) // let a probe prove the replicas in
		rate := throughput(c)
		c.Close()
		fmt.Printf("primary + %d followers   | %12.0f\n", followers, rate)
	}

	// Steady-state lag: a burst of autocommitting writes on the primary
	// while one follower tails; the lag observed after each ack, and the
	// time from the last ack to full convergence.
	fst := fstores[0]
	e17Converged(pst, fst)
	var maxLag int64
	before := pst.DurableEnd()
	t0 := time.Now()
	for i := 0; i < burst; i++ {
		if err := w.Put(fmt.Sprintf("b%04d", i), value.Int(int64(i)), nil); err != nil {
			fmt.Println("e17: ", err)
			return
		}
		if lag := pst.DurableEnd() - fst.DurableEnd(); lag > maxLag {
			maxLag = lag
		}
	}
	acked := time.Since(t0)
	t1 := time.Now()
	e17Converged(pst, fst)
	catchup := time.Since(t1)
	shipped := pst.DurableEnd() - before
	fmt.Printf("\nlag under a write burst: %d autocommits (%d bytes) in %v\n",
		burst, shipped, acked.Round(time.Millisecond))
	fmt.Printf("%-23s | %12s\n", "max lag after an ack", fmt.Sprintf("%d bytes", maxLag))
	fmt.Printf("%-23s | %12v\n", "catch-up after last ack", catchup.Round(time.Microsecond))

	fmt.Println("\nshape: followers add read capacity only insofar as cores exist to")
	fmt.Println("run them — on a single-CPU host the topologies collapse to the same")
	fmt.Println("wall clock and the table shows absence-of-overhead, not speedup (the")
	fmt.Println("E13 caveat); the lag numbers are the honest cost of asynchrony: the")
	fmt.Println("window trails by about one commit group and closes in milliseconds.")
}

// ---------------------------------------------------------------------------

// slowSyncFS models an SSD-class disk on hosts whose fsync is nearly
// free (tmpfs, battery-backed cache): every Sync costs an extra fixed
// latency. Without it E18 would measure the loopback round trip, not
// durability amortization — the fsync must be the dominant cost for the
// experiment's question to be the one answered.
type slowSyncFS struct {
	iofault.FS
	delay time.Duration
}

func (f slowSyncFS) OpenFile(name string, flag int, perm os.FileMode) (iofault.File, error) {
	file, err := f.FS.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return slowSyncFile{File: file, delay: f.delay}, nil
}

type slowSyncFile struct {
	iofault.File
	delay time.Duration
}

func (f slowSyncFile) Sync() error {
	time.Sleep(f.delay)
	return f.File.Sync()
}

// e18Serve is e17Serve over the modeled disk.
func e18Serve(path string, cfg server.Config, syncDelay time.Duration) (string, func(), error) {
	st, err := intrinsic.OpenFS(slowSyncFS{FS: iofault.OS{}, delay: syncDelay}, path)
	if err != nil {
		return "", nil, err
	}
	srv, err := server.New(st, cfg)
	if err != nil {
		st.Close()
		return "", nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		st.Close()
		return "", nil, err
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	stop := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		<-done
		st.Close()
	}
	return ln.Addr().String(), stop, nil
}

// e18Throughput runs `writers` goroutines, each autocommitting PUTs over
// its own client for a fixed wall window, and returns aggregate acked
// writes per second.
func e18Throughput(addr string, writers int, window time.Duration) (float64, error) {
	clients := make([]*client.Client, writers)
	for i := range clients {
		c, err := client.Dial(addr, &client.Options{PoolSize: 1})
		if err != nil {
			return 0, err
		}
		defer c.Close()
		clients[i] = c
	}
	var ops atomic.Int64
	var firstErr atomic.Value
	stopCh := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			name := fmt.Sprintf("w%02d", w)
			for i := 0; ; i++ {
				select {
				case <-stopCh:
					return
				default:
				}
				if err := clients[w].Put(name, value.Int(int64(i)), nil); err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				ops.Add(1)
			}
		}()
	}
	time.Sleep(window)
	close(stopCh)
	wg.Wait()
	if err, ok := firstErr.Load().(error); ok {
		return 0, err
	}
	return float64(ops.Load()) / window.Seconds(), nil
}

func e18GroupCommit() {
	header("E18", "group commit: PUT throughput vs writer concurrency per durability mode",
		`per-commit durability serializes every writer behind a private fsync,
       so aggregate throughput flatlines at 1/fsync no matter how many
       clients push; the commit coalescer stages concurrent commits into
       one batch promoted by one shared fsync, so throughput should scale
       with the batch while each writer keeps the same guarantee; async
       acks before the fsync and marks the upper bound (and its price)`)
	window := 400 * time.Millisecond
	sweep := []int{1, 2, 4, 8, 16}
	syncDelay := 2 * time.Millisecond // SSD-class fsync
	if *quick {
		window = 150 * time.Millisecond
		sweep = []int{1, 4, 8}
	}
	dir, err := os.MkdirTemp("", "e18-*")
	if err != nil {
		fmt.Println("e18: ", err)
		return
	}
	defer os.RemoveAll(dir)

	fmt.Printf("fsync modeled at %v (SSD-class); host fsync is near-free, which\n", syncDelay)
	fmt.Println("would measure the loopback round trip instead of durability cost")
	modes := []server.Durability{server.DurPerCommit, server.DurGroup, server.DurAsync}
	rates := map[server.Durability]map[int]float64{}
	fmt.Printf("\n%-12s |", "durability")
	for _, w := range sweep {
		fmt.Printf(" %9s", fmt.Sprintf("w=%d", w))
	}
	fmt.Println("   (acked writes/sec)")
	for _, mode := range modes {
		addr, stop, err := e18Serve(filepath.Join(dir, mode.String()+".log"),
			server.Config{Durability: mode}, syncDelay)
		if err != nil {
			fmt.Println("e18: ", err)
			return
		}
		rates[mode] = map[int]float64{}
		fmt.Printf("%-12s |", mode)
		for _, w := range sweep {
			rate, err := e18Throughput(addr, w, window)
			if err != nil {
				fmt.Println("\ne18: ", err)
				stop()
				return
			}
			rates[mode][w] = rate
			fmt.Printf(" %9.0f", rate)
		}
		fmt.Println()
		stop()
	}

	base := rates[server.DurPerCommit][1]
	grp := rates[server.DurGroup][8]
	if base > 0 {
		fmt.Printf("\namortization: group @ 8 writers = %.1fx the per-commit single-writer rate", grp/base)
		if grp >= 2*base {
			fmt.Println("  ✓ (>= 2x)")
		} else {
			fmt.Println("  ✗ (< 2x)")
		}
	}
	fmt.Println("\nshape: per-commit is flat — adding writers only lengthens the fsync")
	fmt.Println("queue; group scales because the batch amortizes that queue into one")
	fmt.Println("shared fsync (batches self-tune to whatever queued during the previous")
	fmt.Println("one); async tops the table by acking before the fsync, paying for it")
	fmt.Println("with the acked-but-not-durable window HEALTH reports. The scaling is")
	fmt.Println("real even on a single CPU — the writers overlap in fsync *wait*, not")
	fmt.Println("in compute — though absolute rates compress as cores saturate.")
}

// ---------------------------------------------------------------------------

// e19Converged polls HEALTH on both servers until their durable ends
// agree (and are past the bare header), i.e. the follower caught up.
func e19Converged(pc, fc *client.Client) error {
	deadline := time.Now().Add(10 * time.Second)
	for {
		ph, perr := pc.Health()
		fh, ferr := fc.Health()
		if perr == nil && ferr == nil && ph.DurableEnd == fh.DurableEnd && ph.DurableEnd > 8 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("follower never converged (primary %v/%v, follower %v/%v)", ph.DurableEnd, perr, fh.DurableEnd, ferr)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// e19Trial runs one failover: seed writes through a client pinned to the
// primary, kill the primary, promote the follower (the watchdog's job,
// issued immediately — detection latency is policy, not mechanism, so it
// is excluded), and clock until the *same client's* next write is acked
// by the new primary. Returns (promotion time, total RTO).
func e19Trial(dir string, mode server.Durability, syncDelay time.Duration) (promote, rto time.Duration, err error) {
	paddr, pstop, err := e18Serve(filepath.Join(dir, "primary.log"), server.Config{Durability: mode}, syncDelay)
	if err != nil {
		return 0, 0, err
	}
	stopped := false
	defer func() {
		if !stopped {
			pstop()
		}
	}()
	faddr, fstop, err := e18Serve(filepath.Join(dir, "follower.log"),
		server.Config{Durability: mode, Follow: paddr, ReplHeartbeat: 50 * time.Millisecond, AllowPromote: true},
		syncDelay)
	if err != nil {
		return 0, 0, err
	}
	defer fstop()

	c, err := client.Dial(paddr, &client.Options{Replicas: []string{faddr}})
	if err != nil {
		return 0, 0, err
	}
	defer c.Close()
	fc, err := client.Dial(faddr, nil)
	if err != nil {
		return 0, 0, err
	}
	defer fc.Close()
	for i := 0; i < 20; i++ {
		if err := c.Put(fmt.Sprintf("seed%02d", i), value.Int(int64(i)), nil); err != nil {
			return 0, 0, err
		}
	}
	if err := e19Converged(c, fc); err != nil {
		return 0, 0, err
	}

	t0 := time.Now()
	pstop()
	stopped = true
	if _, err := fc.Promote(); err != nil {
		return 0, 0, err
	}
	promote = time.Since(t0)
	// The pinned client's next write fails over on its own: conn lost →
	// probe the failover set → re-pin to the highest-epoch primary →
	// replay under the same idempotency key.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if err = c.Put("after-failover", value.Int(1), nil); err == nil {
			break
		}
		if time.Now().After(deadline) {
			return 0, 0, fmt.Errorf("no acked write within 10s of primary death: %w", err)
		}
	}
	return promote, time.Since(t0), nil
}

func e19Failover() {
	header("E19", "failover: recovery time from primary death to the next acked write",
		`persistence that survives "the lifetime of the computing system" must
       survive the primary's death: a follower is promoted under a durable
       epoch that fences the old primary, and the client re-pins writes by
       probing for the highest epoch — RTO is mechanism (promote + probe +
       replay), not detection policy`)
	trials := 5
	syncDelay := 2 * time.Millisecond // the same SSD-class fsync E18 models
	if *quick {
		trials = 2
	}
	fmt.Printf("fsync modeled at %v (as E18); promotion itself pays one durable\n", syncDelay)
	fmt.Printf("epoch append; RTO clocks primary-death → promote → client probe/re-pin\n")
	fmt.Printf("→ replayed write acked on the new primary (median of %d trials)\n\n", trials)
	fmt.Printf("%-12s | %12s | %12s\n", "durability", "promote", "total RTO")
	for _, mode := range []server.Durability{server.DurPerCommit, server.DurGroup} {
		var promotes, rtos []time.Duration
		for i := 0; i < trials; i++ {
			dir, err := os.MkdirTemp("", "e19-*")
			if err != nil {
				fmt.Println("e19: ", err)
				return
			}
			p, r, err := e19Trial(dir, mode, syncDelay)
			os.RemoveAll(dir)
			if err != nil {
				fmt.Println("e19: ", err)
				return
			}
			promotes, rtos = append(promotes, p), append(rtos, r)
		}
		sort.Slice(promotes, func(i, j int) bool { return promotes[i] < promotes[j] })
		sort.Slice(rtos, func(i, j int) bool { return rtos[i] < rtos[j] })
		fmt.Printf("%-12s | %12v | %12v\n", mode,
			promotes[len(promotes)/2].Round(100*time.Microsecond), rtos[len(rtos)/2].Round(100*time.Microsecond))
	}
	fmt.Println("\nthe RTO is dominated by the client's side of the failover — noticing")
	fmt.Println("the dead connection, probing the candidate set under its 2s-capped")
	fmt.Println("timeouts, and replaying — not by the promotion, which is one epoch")
	fmt.Println("append + fsync. durability mode barely moves it: the epoch record and")
	fmt.Println("the replayed write each pay one (possibly shared) fsync either way.")
	fmt.Println("async caveat (why it has no RTO row): under -durability async the")
	fmt.Println("primary acks before fsync *and* before shipping, so writes acked in")
	fmt.Println("the window before the crash can be lost outright — the follower never")
	fmt.Println("saw them and the fenced primary's unsynced tail is gone. Failover is")
	fmt.Println("only as strong as the acked-means-shipped guarantee behind it; see")
	fmt.Println("docs/REPLICATION.md for the at-risk-writes runbook.")
}
