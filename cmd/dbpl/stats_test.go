package main

import (
	"bufio"
	"bytes"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"

	"dbpl/client"
	"dbpl/internal/telemetry"
	"dbpl/internal/value"
)

// addrFromBanner extracts the "on ADDR" token from a serve banner line.
func addrFromBanner(t *testing.T, banner string) string {
	t.Helper()
	fields := strings.Fields(banner)
	for i, f := range fields {
		if f == "on" && i+1 < len(fields) {
			return fields[i+1]
		}
	}
	t.Fatalf("no address in banner %q", banner)
	return ""
}

// TestStatsVerbAndOpsEndpoint boots `serve -ops` as a subprocess and
// exercises both observability surfaces end to end: the stats verb
// renders the wire snapshot, and the ops endpoint serves Prometheus text
// that covers BOTH layers (server and instrumented persistence) from the
// one shared registry.
func TestStatsVerbAndOpsEndpoint(t *testing.T) {
	bin := buildDbpl(t)
	storePath := filepath.Join(t.TempDir(), "obs.log")

	cmd := exec.Command(bin, "serve", "-addr", "127.0.0.1:0", "-ops", "127.0.0.1:0", storePath)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The ops banner precedes the serving banner; the URL is its protocol.
	sc := bufio.NewScanner(stdout)
	opsURL := addrFromBanner(t, waitFor(t, sc, "ops endpoint"))
	addr := addrFromBanner(t, waitFor(t, sc, "dbpl: serving"))

	c, err := client.Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Put("n", value.Int(7), nil); err != nil {
		t.Fatal(err)
	}

	// The stats verb, in-process, against the live server.
	var out bytes.Buffer
	if err := runStats([]string{addr}, &out); err != nil {
		t.Fatalf("runStats: %v", err)
	}
	for _, want := range []string{
		"dbpl stats " + addr,
		"counters:",
		`dbpl_server_requests_total{op="PUT"}`,
		"histograms",
		"dbpl_server_commit_seconds",
		// The serve verb instruments the store's FS into the same registry.
		"dbpl_persist_fsync_total",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("stats output missing %q\n%s", want, out.String())
		}
	}

	// The ops endpoint speaks Prometheus text for the same registry.
	resp, err := http.Get(opsURL)
	if err != nil {
		t.Fatalf("scrape %s: %v", opsURL, err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scrape status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != telemetry.PromContentType {
		t.Errorf("scrape content type %q, want %q", ct, telemetry.PromContentType)
	}
	for _, want := range []string{
		"# TYPE dbpl_server_requests_total counter",
		`dbpl_server_requests_total{op="PUT"} 1`,
		"dbpl_persist_fsync_seconds_bucket",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waitFor(t, sc, "server stopped")
	if err := cmd.Wait(); err != nil {
		t.Fatalf("serve exit after SIGTERM: %v (stderr: %s)", err, stderr.String())
	}
}

// TestStatsVerbUsage: no address is a usage error, not a hang.
func TestStatsVerbUsage(t *testing.T) {
	var out bytes.Buffer
	if err := runStats(nil, &out); err == nil || !strings.Contains(err.Error(), "usage") {
		t.Fatalf("runStats() = %v, want usage error", err)
	}
}
