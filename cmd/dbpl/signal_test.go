package main

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"dbpl/client"
	"dbpl/internal/persist/intrinsic"
	"dbpl/internal/value"
)

// buildDbpl compiles the dbpl binary once per test binary into a temp
// dir, for subprocess signal tests.
func buildDbpl(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("skipping subprocess build in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "dbpl")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// waitFor scans lines from r until one contains want, relaying progress
// to stop the test hanging silently on a protocol change.
func waitFor(t *testing.T, r *bufio.Scanner, want string) string {
	t.Helper()
	for r.Scan() {
		if strings.Contains(r.Text(), want) {
			return r.Text()
		}
	}
	t.Fatalf("subprocess exited before printing %q (scan err: %v)", want, r.Err())
	return ""
}

// TestReplSignalClosesStore is the regression test for the ISSUE's
// satellite: a REPL session holding an open intrinsic store, killed with
// SIGINT, must close the store through the graceful path (exit 130, the
// diagnostic on stderr) and leave the log reopenable with every committed
// root intact — not exit with the store abandoned.
func TestReplSignalClosesStore(t *testing.T) {
	bin := buildDbpl(t)
	storePath := filepath.Join(t.TempDir(), "repl.log")

	cmd := exec.Command(bin, "-store", storePath)
	stdin, err := cmd.StdinPipe()
	if err != nil {
		t.Fatal(err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// Commit a root, then sync on a printed marker so the signal lands
	// only after the commit group is durable.
	io.WriteString(stdin, "persistent X : Int = 7;\n")
	io.WriteString(stdin, "commit();\n")
	io.WriteString(stdin, `print("SYNCED");`+"\n")
	sc := bufio.NewScanner(stdout)
	waitFor(t, sc, "SYNCED")

	if err := cmd.Process.Signal(syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	err = cmd.Wait()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("Wait: %v (want exit error 130)", err)
	}
	if code := ee.ExitCode(); code != 130 {
		t.Errorf("exit code = %d, want 130 (128+SIGINT)", code)
	}
	if !strings.Contains(stderr.String(), "closing store") {
		t.Errorf("stderr missing the graceful-close diagnostic; got %q", stderr.String())
	}

	// The store reopens with the committed root intact.
	st, err := intrinsic.Open(storePath)
	if err != nil {
		t.Fatalf("store did not survive SIGINT: %v", err)
	}
	defer st.Close()
	r, ok2 := st.Root("X")
	if !ok2 {
		t.Fatal("root X missing after SIGINT")
	}
	if !value.Equal(r.Value, value.Int(7)) {
		t.Errorf("X = %s, want 7", r.Value)
	}
}

// TestServeSignalDrains: the serve verb on SIGTERM drains the server,
// closes the store, and exits 0 — the same shared graceful path.
func TestServeSignalDrains(t *testing.T) {
	bin := buildDbpl(t)
	storePath := filepath.Join(t.TempDir(), "serve.log")

	cmd := exec.Command(bin, "serve", "-addr", "127.0.0.1:0", storePath)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	sc := bufio.NewScanner(stdout)
	banner := waitFor(t, sc, "dbpl: serving")
	// The banner's "on ADDR" token is the protocol for finding the port.
	fields := strings.Fields(banner)
	var addr string
	for i, f := range fields {
		if f == "on" && i+1 < len(fields) {
			addr = fields[i+1]
		}
	}
	if addr == "" {
		t.Fatalf("no address in banner %q", banner)
	}

	// The server must actually be reachable before we shoot it.
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatalf("dial %s: %v", addr, err)
	}
	conn.Close()

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waitFor(t, sc, "server stopped")
	if err := cmd.Wait(); err != nil {
		t.Fatalf("serve exit after SIGTERM: %v (stderr: %s)", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "draining server and closing store") {
		t.Errorf("stderr missing the drain diagnostic; got %q", stderr.String())
	}

	// The shutdown appended a durable boundary; the log reopens cleanly.
	st, err := intrinsic.Open(storePath)
	if err != nil {
		t.Fatalf("store did not survive SIGTERM: %v", err)
	}
	st.Close()
}

// TestServeSignalDrainWaitsForInflight is the regression test for the
// shutdown race: Shutdown closes the listener first, so srv.Serve returns
// while the signal handler is still draining — runServe must wait for the
// handler to finish (drain, final commit group, store close) before the
// process exits, instead of killing in-flight requests mid-commit. The
// server is signaled while client goroutines are streaming PUTs; the
// handler's completion marker must appear, exit must be clean, and every
// acknowledged PUT must be durable in the reopened log.
func TestServeSignalDrainWaitsForInflight(t *testing.T) {
	bin := buildDbpl(t)
	storePath := filepath.Join(t.TempDir(), "busy.log")

	cmd := exec.Command(bin, "serve", "-addr", "127.0.0.1:0", storePath)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	sc := bufio.NewScanner(stdout)
	banner := waitFor(t, sc, "dbpl: serving")
	fields := strings.Fields(banner)
	var addr string
	for i, f := range fields {
		if f == "on" && i+1 < len(fields) {
			addr = fields[i+1]
		}
	}
	if addr == "" {
		t.Fatalf("no address in banner %q", banner)
	}

	c, err := client.Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Stream PUTs until the drain refuses them; every acknowledged write
	// must survive the shutdown.
	const writers = 4
	var mu sync.Mutex
	var acked []string
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				name := fmt.Sprintf("w%d.n%d", w, i)
				if err := c.Put(name, value.Int(int64(i)), nil); err != nil {
					return // drain refusal or dead conn: shutdown reached us
				}
				mu.Lock()
				acked = append(acked, name)
				mu.Unlock()
			}
		}(w)
	}

	// Let traffic flow, then shoot the server mid-stream.
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(acked)
		mu.Unlock()
		if n >= 20 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("writers never got going")
		}
		time.Sleep(time.Millisecond)
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waitFor(t, sc, "server stopped")
	if err := cmd.Wait(); err != nil {
		t.Fatalf("serve exit after SIGTERM: %v (stderr: %s)", err, stderr.String())
	}
	wg.Wait()

	// "server stopped" and process exit may only follow the handler's full
	// graceful path; its completion marker proves the wait happened.
	if !strings.Contains(stderr.String(), "dbpl: store closed") {
		t.Errorf("process exited before the signal handler finished; stderr: %q", stderr.String())
	}

	st, err := intrinsic.Open(storePath)
	if err != nil {
		t.Fatalf("store did not survive SIGTERM under load: %v", err)
	}
	defer st.Close()
	mu.Lock()
	defer mu.Unlock()
	for _, name := range acked {
		if _, ok := st.Root(name); !ok {
			t.Errorf("acknowledged root %q lost by shutdown", name)
		}
	}
}
