// The stats verb: fetch and render a running server's telemetry snapshot
// over the wire (the STATS opcode).
//
//	dbpl stats [-watch] [-every 2s] addr
//
// One shot prints the full metric catalogue — counters, gauges, and
// histograms with count/mean/p50/p99 — grouped and sorted by name.
// -watch prints the full snapshot once, then every -every interval
// renders what *changed*: counters as per-second rates, histograms as
// interval-local count/mean/p50/p99, gauges at their current value, with
// unchanged series suppressed — the cumulative catalogue drowns the
// signal when you are watching for movement. STATS bypasses admission
// control, so the snapshot is readable from exactly the server that is
// shedding everyone else.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"time"

	"dbpl/client"
	"dbpl/internal/server/wire"
	"dbpl/internal/telemetry"
)

func runStats(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("stats", flag.ContinueOnError)
	watch := fs.Bool("watch", false, "refresh continuously until interrupted")
	every := fs.Duration("every", 2*time.Second, "refresh interval with -watch")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return errors.New("usage: dbpl stats [-watch] [-every 2s] addr")
	}
	c, err := client.Dial(fs.Arg(0), nil)
	if err != nil {
		return err
	}
	defer c.Close()
	var prev *telemetry.Snapshot
	for {
		snap, err := c.Stats()
		if err != nil {
			return err
		}
		if prev == nil {
			renderSnapshot(out, fs.Arg(0), snap)
		} else {
			renderDelta(out, fs.Arg(0), snap, prev)
		}
		if !*watch {
			return nil
		}
		prev = snap
		time.Sleep(*every)
	}
}

// renderDelta renders what moved between two snapshots: counter rates,
// interval-local histogram stats, current gauge values. Quiet series are
// suppressed.
func renderDelta(out io.Writer, addr string, cur, prev *telemetry.Snapshot) {
	d := cur.Delta(prev)
	secs := cur.TakenAt.Sub(prev.TakenAt).Seconds()
	if secs <= 0 {
		secs = 1
	}
	if role, epoch, ok := replIdentity(cur); ok {
		fmt.Fprintf(out, "dbpl stats %s — Δ%.1fs — %s, epoch %d\n",
			addr, secs, wire.Role(role).String(), epoch)
	} else {
		fmt.Fprintf(out, "dbpl stats %s — Δ%.1fs\n", addr, secs)
	}
	var headed bool
	for _, c := range d.Counters {
		if c.Value == 0 {
			continue
		}
		if !headed {
			fmt.Fprintln(out, "counters (rate):")
			headed = true
		}
		fmt.Fprintf(out, "  %-56s %.1f/s\n", c.Name, float64(c.Value)/secs)
	}
	headed = false
	// Gauges are instantaneous; show the ones that moved, at their
	// current value.
	prevG := map[string]int64{}
	for _, g := range prev.Gauges {
		prevG[g.Name] = g.Value
	}
	for _, g := range d.Gauges {
		if pv, ok := prevG[g.Name]; ok && pv == g.Value {
			continue
		}
		if !headed {
			fmt.Fprintln(out, "gauges:")
			headed = true
		}
		fmt.Fprintf(out, "  %-56s %d\n", g.Name, g.Value)
	}
	headed = false
	for _, h := range d.Histograms {
		if h.Count == 0 {
			continue
		}
		if !headed {
			fmt.Fprintln(out, "histograms, this interval (count · mean · p50 · p99):")
			headed = true
		}
		fmt.Fprintf(out, "  %-56s %d · %s · %s · %s\n", h.Name, h.Count,
			histVal(h, h.Mean()), histVal(h, float64(h.Quantile(0.5))), histVal(h, float64(h.Quantile(0.99))))
	}
	fmt.Fprintln(out)
}

func renderSnapshot(out io.Writer, addr string, s *telemetry.Snapshot) {
	// The replication identity — role and promotion epoch — leads the
	// report: during a failover it is the first thing an operator needs,
	// and digging it out of the gauge list is too slow at 3am.
	if role, epoch, ok := replIdentity(s); ok {
		fmt.Fprintf(out, "dbpl stats %s — taken %s — %s, epoch %d\n",
			addr, s.TakenAt.Format(time.RFC3339), wire.Role(role).String(), epoch)
	} else {
		fmt.Fprintf(out, "dbpl stats %s — taken %s\n", addr, s.TakenAt.Format(time.RFC3339))
	}
	if len(s.Counters) > 0 {
		fmt.Fprintln(out, "counters:")
		for _, c := range s.Counters {
			fmt.Fprintf(out, "  %-56s %d\n", c.Name, c.Value)
		}
	}
	if len(s.Gauges) > 0 {
		fmt.Fprintln(out, "gauges:")
		for _, g := range s.Gauges {
			fmt.Fprintf(out, "  %-56s %d\n", g.Name, g.Value)
		}
	}
	if len(s.Histograms) > 0 {
		fmt.Fprintln(out, "histograms (count · mean · p50 · p99):")
		for _, h := range s.Histograms {
			fmt.Fprintf(out, "  %-56s %d · %s · %s · %s\n", h.Name, h.Count,
				histVal(h, h.Mean()), histVal(h, float64(h.Quantile(0.5))), histVal(h, float64(h.Quantile(0.99))))
		}
	}
	fmt.Fprintln(out)
}

// replIdentity digs the server's role and promotion epoch out of the
// snapshot's gauges; ok is false against a pre-failover server that does
// not publish them.
func replIdentity(s *telemetry.Snapshot) (role, epoch int64, ok bool) {
	var haveRole, haveEpoch bool
	for _, g := range s.Gauges {
		switch g.Name {
		case "dbpl_repl_role":
			role, haveRole = g.Value, true
		case "dbpl_server_epoch":
			epoch, haveEpoch = g.Value, true
		}
	}
	return role, epoch, haveRole && haveEpoch
}

// histVal renders one histogram-scaled value: durations humanly
// (1.5ms-style), counts as plain numbers.
func histVal(h telemetry.HistogramSnapshot, v float64) string {
	if h.Unit == telemetry.UnitDuration {
		return time.Duration(v).Round(time.Microsecond).String()
	}
	return fmt.Sprintf("%.1f", v)
}
