// The stats verb: fetch and render a running server's telemetry snapshot
// over the wire (the STATS opcode).
//
//	dbpl stats [-watch] [-every 2s] addr
//
// One shot prints the full metric catalogue — counters, gauges, and
// histograms with count/mean/p50/p99 — grouped and sorted by name;
// -watch reprints every -every interval until interrupted. STATS bypasses
// admission control, so the snapshot is readable from exactly the server
// that is shedding everyone else.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"time"

	"dbpl/client"
	"dbpl/internal/server/wire"
	"dbpl/internal/telemetry"
)

func runStats(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("stats", flag.ContinueOnError)
	watch := fs.Bool("watch", false, "refresh continuously until interrupted")
	every := fs.Duration("every", 2*time.Second, "refresh interval with -watch")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return errors.New("usage: dbpl stats [-watch] [-every 2s] addr")
	}
	c, err := client.Dial(fs.Arg(0), nil)
	if err != nil {
		return err
	}
	defer c.Close()
	for {
		snap, err := c.Stats()
		if err != nil {
			return err
		}
		renderSnapshot(out, fs.Arg(0), snap)
		if !*watch {
			return nil
		}
		time.Sleep(*every)
	}
}

func renderSnapshot(out io.Writer, addr string, s *telemetry.Snapshot) {
	// The replication identity — role and promotion epoch — leads the
	// report: during a failover it is the first thing an operator needs,
	// and digging it out of the gauge list is too slow at 3am.
	if role, epoch, ok := replIdentity(s); ok {
		fmt.Fprintf(out, "dbpl stats %s — taken %s — %s, epoch %d\n",
			addr, s.TakenAt.Format(time.RFC3339), wire.Role(role).String(), epoch)
	} else {
		fmt.Fprintf(out, "dbpl stats %s — taken %s\n", addr, s.TakenAt.Format(time.RFC3339))
	}
	if len(s.Counters) > 0 {
		fmt.Fprintln(out, "counters:")
		for _, c := range s.Counters {
			fmt.Fprintf(out, "  %-56s %d\n", c.Name, c.Value)
		}
	}
	if len(s.Gauges) > 0 {
		fmt.Fprintln(out, "gauges:")
		for _, g := range s.Gauges {
			fmt.Fprintf(out, "  %-56s %d\n", g.Name, g.Value)
		}
	}
	if len(s.Histograms) > 0 {
		fmt.Fprintln(out, "histograms (count · mean · p50 · p99):")
		for _, h := range s.Histograms {
			fmt.Fprintf(out, "  %-56s %d · %s · %s · %s\n", h.Name, h.Count,
				histVal(h, h.Mean()), histVal(h, float64(h.Quantile(0.5))), histVal(h, float64(h.Quantile(0.99))))
		}
	}
	fmt.Fprintln(out)
}

// replIdentity digs the server's role and promotion epoch out of the
// snapshot's gauges; ok is false against a pre-failover server that does
// not publish them.
func replIdentity(s *telemetry.Snapshot) (role, epoch int64, ok bool) {
	var haveRole, haveEpoch bool
	for _, g := range s.Gauges {
		switch g.Name {
		case "dbpl_repl_role":
			role, haveRole = g.Value, true
		case "dbpl_server_epoch":
			epoch, haveEpoch = g.Value, true
		}
	}
	return role, epoch, haveRole && haveEpoch
}

// histVal renders one histogram-scaled value: durations humanly
// (1.5ms-style), counts as plain numbers.
func histVal(h telemetry.HistogramSnapshot, v float64) string {
	if h.Unit == telemetry.UnitDuration {
		return time.Duration(v).Round(time.Microsecond).String()
	}
	return fmt.Sprintf("%.1f", v)
}
