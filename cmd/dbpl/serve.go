// The serve verb: a concurrent database server over an intrinsic store.
//
//	dbpl serve [-addr :7070] [-drain 5s] [-follow primary:7070] [-allow-promote] [-fsck]
//	           [-max-inflight n] [-durability per-commit|group|async]
//	           [-commit-max-delay d] [-commit-max-batch n] [-ops 127.0.0.1:7071]
//	           [-trace-sample p] [-trace-ring n] store.log
//
// With -follow the server is a read-only replication follower: it streams
// the primary's log, applies each verified commit group to its own, and
// serves reads while refusing writes. With -allow-promote it additionally
// accepts the PROMOTE admin opcode (`dbpl promote addr`), which turns a
// follower into the new primary at a bumped, durable promotion epoch —
// see docs/REPLICATION.md for the failover runbook.
//
// -durability selects when writes are acknowledged relative to the fsync:
// per-commit (default) fsyncs every commit group alone; group coalesces
// concurrent commits under one shared fsync and acks after it (same
// guarantee, amortized cost); async acks before the fsync and publishes
// the acked-end watermark via HEALTH — a crash may lose acked writes. See
// docs/PERSISTENCE.md.
//
// See docs/SERVER.md for the wire protocol and transaction semantics,
// docs/RESILIENCE.md for admission control and degraded mode,
// docs/REPLICATION.md for log shipping and follower semantics,
// docs/OBSERVABILITY.md for the metrics the -ops endpoint exposes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"time"

	"dbpl/internal/persist/intrinsic"
	"dbpl/internal/persist/iofault"
	"dbpl/internal/server"
	"dbpl/internal/telemetry"
)

func runServe(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", ":7070", "TCP listen address")
	drain := fs.Duration("drain", 5*time.Second, "graceful-shutdown drain budget on SIGINT/SIGTERM")
	fsck := fs.Bool("fsck", false, "verify the log before serving; refuse to start on corruption")
	maxInflight := fs.Int("max-inflight", 0, "admission-control cap on concurrently executing requests (0 = default 1024, negative = uncapped)")
	follow := fs.String("follow", "", "replicate from the primary at this address and serve read-only")
	allowPromote := fs.Bool("allow-promote", false, "accept the PROMOTE admin opcode (dbpl promote) to take over as primary during failover")
	opsAddr := fs.String("ops", "", "HTTP ops endpoint exposing /metrics, /slowops and /debug/pprof; unauthenticated — bind loopback (e.g. 127.0.0.1:7071)")
	durability := fs.String("durability", "per-commit", "write acknowledgement mode: per-commit (one fsync per commit), group (concurrent commits share one fsync), async (ack before fsync; a crash may lose acked writes)")
	commitMaxDelay := fs.Duration("commit-max-delay", 0, "group/async: linger this long for more commits to join a batch (0 = batch whatever queued during the previous fsync)")
	commitMaxBatch := fs.Int("commit-max-batch", 0, "group/async: max commit groups amortized by one fsync (0 = default 64)")
	traceSample := fs.Float64("trace-sample", 0, "head-sampling probability for span-based request tracing (0 = off, 1 = trace everything); slow requests are always retained")
	traceRing := fs.Int("trace-ring", 0, "completed traces retained in memory for TRACES//traces (0 = default 256)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return errors.New("usage: dbpl serve [-addr :7070] [-drain 5s] [-fsck] [-max-inflight n] [-durability per-commit|group|async] [-ops 127.0.0.1:7071] store.log")
	}
	dur, err := server.ParseDurability(*durability)
	if err != nil {
		return fmt.Errorf("serve -durability: %w", err)
	}
	if *fsck {
		// Catch a damaged log at startup, before binding the listener —
		// not at the first commit hours later. A missing log is fine (Open
		// creates it); a torn tail is fine too (recovery truncates it and
		// fsck would report the same after a crash).
		if _, err := os.Stat(fs.Arg(0)); err == nil {
			rep, err := intrinsic.Fsck(fs.Arg(0))
			if err != nil {
				return fmt.Errorf("serve -fsck: %w", err)
			}
			if rep.Corrupt != nil {
				return fmt.Errorf("serve -fsck: refusing to serve a corrupt log (%d commits recoverable):\n%s\nrun `dbpl fsck -salvage fresh.log %s` to recover the valid prefix",
					rep.Commits, rep.Corrupt, fs.Arg(0))
			}
			note := "clean"
			if rep.TornTail {
				note = "torn tail, recovery will truncate it"
			}
			fmt.Fprintf(out, "dbpl: fsck %s: %s (%d commits, %d roots)\n", fs.Arg(0), note, rep.Commits, rep.Roots)
		}
	}
	// One registry spans both layers: the store's file I/O is counted by
	// the instrumented FS it is opened through, the server registers its
	// request metrics into the same registry, and one STATS frame (or one
	// /metrics scrape) reports fsync latency next to request latency.
	reg := telemetry.NewRegistry()
	st, err := intrinsic.OpenFS(telemetry.InstrumentFS(iofault.OS{}, reg), fs.Arg(0))
	if err != nil {
		return err
	}
	defer st.Close()

	srv, err := server.New(st, server.Config{
		Logf:            func(format string, a ...any) { fmt.Fprintf(os.Stderr, format+"\n", a...) },
		MaxInFlight:     *maxInflight,
		Registry:        reg,
		Follow:          *follow,
		AllowPromote:    *allowPromote,
		Durability:      dur,
		GroupMaxDelay:   *commitMaxDelay,
		GroupMaxBatch:   *commitMaxBatch,
		TraceSampleRate: *traceSample,
		TraceRingSize:   *traceRing,
	})
	if err != nil {
		return err
	}
	if *opsAddr != "" {
		oln, err := net.Listen("tcp", *opsAddr)
		if err != nil {
			return fmt.Errorf("serve -ops: %w", err)
		}
		defer oln.Close()
		go http.Serve(oln, srv.OpsHandler())
		fmt.Fprintf(out, "dbpl: ops endpoint on http://%s/metrics\n", oln.Addr())
	}
	// SIGINT/SIGTERM drain the server, append the final commit group, and
	// close the store — the same graceful path every verb now shares. The
	// handler goes in before the banner below announces readiness, so a
	// supervisor reacting to the banner can never catch the default
	// (store-abandoning) signal disposition.
	//
	// Shutdown closes the listener first, which makes srv.Serve below
	// return while the handler is still draining in-flight requests — so
	// the handler signals completion through shutdownDone, and Serve's
	// caller waits on it before letting the process exit. Without that
	// wait, returning from runServe would kill requests mid-commit against
	// a store the deferred Close is closing, and lose the final durable
	// boundary the drain exists to write.
	shutdownDone := make(chan struct{})
	stop := onSignal(func(sig os.Signal) {
		defer close(shutdownDone)
		fmt.Fprintf(os.Stderr, "dbpl: %v — draining server and closing store\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "dbpl: shutdown:", err)
		}
		if err := st.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "dbpl: close:", err)
		}
		fmt.Fprintln(os.Stderr, "dbpl: store closed")
	})
	defer stop()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// The banner is a protocol for scripts and tests: the bound address on
	// one line, flushed before the first Accept.
	if *follow != "" {
		fmt.Fprintf(out, "dbpl: serving %s on %s (%d roots, read-only follower of %s)\n",
			fs.Arg(0), ln.Addr(), srv.Stats().Roots, *follow)
	} else if dur != server.DurPerCommit {
		fmt.Fprintf(out, "dbpl: serving %s on %s (%d roots, durability=%s)\n",
			fs.Arg(0), ln.Addr(), srv.Stats().Roots, dur)
	} else {
		fmt.Fprintf(out, "dbpl: serving %s on %s (%d roots)\n", fs.Arg(0), ln.Addr(), srv.Stats().Roots)
	}

	err = srv.Serve(ln)
	if err != nil && !errors.Is(err, server.ErrServerClosed) {
		return err
	}
	if errors.Is(err, server.ErrServerClosed) {
		// ErrServerClosed means the signal handler called Shutdown; wait
		// for the drain, the final commit group, and the store close to
		// complete before the process exits.
		<-shutdownDone
	}
	fmt.Fprintln(out, "dbpl: server stopped")
	return nil
}
