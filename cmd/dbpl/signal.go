package main

import (
	"os"
	"os/signal"
	"syscall"
)

// onSignal invokes handler (once) when SIGINT or SIGTERM arrives, so every
// verb routes termination through a graceful path instead of dying with
// stores open. A second signal during the handler forces an immediate
// exit. The returned stop function uninstalls the handler.
func onSignal(handler func(sig os.Signal)) (stop func()) {
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig, ok := <-ch
		if !ok {
			return
		}
		go func() {
			if _, again := <-ch; again {
				os.Exit(1)
			}
		}()
		handler(sig)
	}()
	return func() {
		signal.Stop(ch)
		close(ch)
	}
}

// exitCode maps a signal to the conventional 128+N exit status.
func exitCode(sig os.Signal) int {
	if s, ok := sig.(syscall.Signal); ok {
		return 128 + int(s)
	}
	return 1
}
