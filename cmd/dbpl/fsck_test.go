package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dbpl/internal/persist/intrinsic"
	"dbpl/internal/value"
)

func buildStore(t *testing.T, path string) {
	t.Helper()
	s, err := intrinsic.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 2; i++ {
		if err := s.Bind("x", value.Int(int64(i)), nil); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFsckVerbClean(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.log")
	buildStore(t, path)
	var out strings.Builder
	if err := runFsck([]string{path}, &out); err != nil {
		t.Fatalf("runFsck: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "clean") {
		t.Errorf("output missing clean verdict:\n%s", out.String())
	}
}

func TestFsckVerbCorruptAndSalvage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.log")
	buildStore(t, path)
	img, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	img[len(img)-1] ^= 0x01 // damage the last group's checksum
	if err := os.WriteFile(path, img, 0o644); err != nil {
		t.Fatal(err)
	}

	salvaged := filepath.Join(dir, "salvaged.log")
	var out strings.Builder
	err = runFsck([]string{"-salvage", salvaged, path}, &out)
	if err == nil {
		t.Fatalf("runFsck on corrupt log succeeded:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "CORRUPT at offset") {
		t.Errorf("output missing corruption offset:\n%s", out.String())
	}
	// The salvaged copy opens cleanly at the last good commit.
	s, err := intrinsic.Open(salvaged)
	if err != nil {
		t.Fatalf("salvaged log does not open: %v", err)
	}
	defer s.Close()
	r, ok := s.Root("x")
	if !ok || int64(r.Value.(value.Int)) != 1 {
		t.Errorf("salvaged root = %v, want x = 1", r)
	}
}
