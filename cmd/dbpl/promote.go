// The promote verb: order a follower to take over as primary.
//
//	dbpl promote addr
//
// The target must have been started with `dbpl serve -allow-promote`. On
// success it stops following its old upstream, appends a durable epoch
// record to its log, begins accepting writes, and (best effort) notifies
// the old primary so it fences itself read-only. See docs/REPLICATION.md
// for the full failover runbook, including how to rejoin the demoted
// primary and what a divergence refusal means.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"

	"dbpl/client"
)

func runPromote(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("promote", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return errors.New("usage: dbpl promote addr")
	}
	c, err := client.Dial(fs.Arg(0), nil)
	if err != nil {
		return err
	}
	defer c.Close()
	epoch, err := c.Promote()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "dbpl: %s promoted to primary at epoch %d\n", fs.Arg(0), epoch)
	return nil
}
