// Command dbpl runs programs in the database programming language, or an
// interactive REPL when no script is given.
//
// Usage:
//
//	dbpl [-store file] [-rep dir] [script.dbpl ...]
//
// With -store, `persistent` declarations and commit/abort are backed by an
// intrinsic store at the given path; with -rep, extern/intern are backed by
// a replicating store in the given directory. Scripts run in order in one
// session, so a later script sees the bindings of earlier ones.
//
// The fsck verb verifies an intrinsic store log offline:
//
//	dbpl fsck [-salvage out.log] store.log
//
// The serve verb exposes a store to concurrent remote clients (see
// docs/SERVER.md):
//
//	dbpl serve [-addr :7070] store.log
//
// The stats verb renders a running server's telemetry snapshot (see
// docs/OBSERVABILITY.md):
//
//	dbpl stats [-watch] addr
//
// The trace verb renders a server's retained request traces — the span
// trees a server started with -trace-sample records:
//
//	dbpl trace [-follow] addr
//
// The promote verb orders a follower started with -allow-promote to take
// over as primary during failover (see docs/REPLICATION.md):
//
//	dbpl promote addr
//
// Every verb handles SIGINT/SIGTERM gracefully: open stores are closed
// (the server additionally drains in-flight requests) before exiting.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"dbpl/internal/lang"
	"dbpl/internal/persist/intrinsic"
	"dbpl/internal/persist/replicating"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "fsck" {
		if err := runFsck(os.Args[2:], os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "dbpl: fsck:", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		if err := runServe(os.Args[2:], os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "dbpl: serve:", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "stats" {
		if err := runStats(os.Args[2:], os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "dbpl: stats:", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "trace" {
		if err := runTrace(os.Args[2:], os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "dbpl: trace:", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "promote" {
		if err := runPromote(os.Args[2:], os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "dbpl: promote:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dbpl:", err)
		os.Exit(1)
	}
}

func run() error {
	storePath := flag.String("store", "", "intrinsic store file backing `persistent` declarations")
	repDir := flag.String("rep", "", "replicating store directory backing extern/intern")
	quiet := flag.Bool("q", false, "suppress the value echo of top-level declarations")
	flag.Parse()

	in := lang.New(os.Stdout)
	var st *intrinsic.Store
	if *storePath != "" {
		var err error
		st, err = intrinsic.Open(*storePath)
		if err != nil {
			return err
		}
		defer st.Close()
		in.Intrinsic = st
	}
	if *repDir != "" {
		rep, err := replicating.Open(*repDir)
		if err != nil {
			return err
		}
		in.Replicating = rep
	}
	// SIGINT/SIGTERM must not abandon an open store: close it (waiting out
	// any in-flight commit, which holds the store mutex) before exiting —
	// the same graceful-shutdown discipline the serve verb uses.
	stop := onSignal(func(sig os.Signal) {
		fmt.Fprintf(os.Stderr, "dbpl: %v — closing store\n", sig)
		if st != nil {
			st.Close()
		}
		os.Exit(exitCode(sig))
	})
	defer stop()

	if flag.NArg() == 0 {
		return repl(in)
	}
	for _, path := range flag.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		results, err := in.Run(string(src))
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		if !*quiet {
			for _, r := range results {
				fmt.Println(r)
			}
		}
	}
	return nil
}

// repl reads declarations interactively. Input accumulates until the
// brackets balance and the line ends with a semicolon (or is blank), so
// multi-line functions paste naturally.
func repl(in *lang.Interp) error {
	fmt.Println("dbpl — a database programming language (SIGMOD '86 reproduction)")
	fmt.Println(`end inputs with ";" — e.g.  let x = 1;  then  x + 1;`)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var pending strings.Builder
	prompt := func() {
		if pending.Len() == 0 {
			fmt.Print("dbpl> ")
		} else {
			fmt.Print("  ... ")
		}
	}
	prompt()
	for sc.Scan() {
		line := sc.Text()
		pending.WriteString(line)
		pending.WriteByte('\n')
		src := pending.String()
		if strings.TrimSpace(src) == "" {
			pending.Reset()
			prompt()
			continue
		}
		if !balanced(src) || !strings.HasSuffix(strings.TrimSpace(src), ";") {
			prompt()
			continue
		}
		pending.Reset()
		results, err := in.Run(src)
		if err != nil {
			fmt.Println("error:", err)
		} else {
			for _, r := range results {
				fmt.Println(r)
			}
		}
		prompt()
	}
	fmt.Println()
	return sc.Err()
}

// balanced reports whether every bracket in src is closed (strings and
// comments are respected loosely: quotes toggle, -- skips to newline).
func balanced(src string) bool {
	depth := 0
	inStr := byte(0)
	for i := 0; i < len(src); i++ {
		c := src[i]
		if inStr != 0 {
			if c == '\\' {
				i++
			} else if c == inStr {
				inStr = 0
			}
			continue
		}
		switch c {
		case '"', '\'':
			inStr = c
		case '-':
			if i+1 < len(src) && src[i+1] == '-' {
				for i < len(src) && src[i] != '\n' {
					i++
				}
			}
		case '(', '[', '{':
			depth++
		case ')', ']', '}':
			depth--
		}
	}
	return depth == 0 && inStr == 0
}
