package main

import (
	"flag"
	"fmt"
	"io"

	"dbpl/internal/persist/intrinsic"
)

// runFsck implements the `dbpl fsck` verb:
//
//	dbpl fsck [-salvage out.log] store.log
//
// It verifies the intrinsic store's log — record structure and, for v2
// logs, the CRC-32C of every commit group — and reports the last valid
// commit offset. With -salvage it additionally copies the valid prefix
// into a fresh log at the given path. The exit status is nonzero when the
// log is corrupt (a torn tail alone is recoverable and exits zero).
func runFsck(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("fsck", flag.ContinueOnError)
	fs.SetOutput(out)
	salvage := fs.String("salvage", "", "copy the valid log prefix into a fresh log at `path`")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: dbpl fsck [-salvage out.log] store.log")
	}
	path := fs.Arg(0)

	rep, err := intrinsic.Fsck(path)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, rep)
	if *salvage != "" {
		if _, err := intrinsic.Salvage(path, *salvage); err != nil {
			return err
		}
		fmt.Fprintf(out, "salvaged %d bytes to %s\n", rep.GoodEnd, *salvage)
	}
	if rep.Corrupt != nil {
		return fmt.Errorf("log is corrupt: %v", rep.Corrupt)
	}
	return nil
}
