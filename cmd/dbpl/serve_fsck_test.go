package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestServeFsckRefusesCorruptLog: -fsck catches a damaged log before the
// listener binds and points the operator at the salvage path. (The clean
// path is exercised by the script tour; it would serve forever here.)
func TestServeFsckRefusesCorruptLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.log")
	buildStore(t, path)
	img, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	img[len(img)-1] ^= 0x01 // damage the last group's checksum
	if err := os.WriteFile(path, img, 0o644); err != nil {
		t.Fatal(err)
	}

	var out strings.Builder
	err = runServe([]string{"-fsck", "-addr", "127.0.0.1:0", path}, &out)
	if err == nil {
		t.Fatalf("serve -fsck on a corrupt log started:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "refusing to serve") {
		t.Errorf("error %v does not refuse to serve", err)
	}
	if !strings.Contains(err.Error(), "-salvage") {
		t.Errorf("error %v does not point at dbpl fsck -salvage", err)
	}
}
