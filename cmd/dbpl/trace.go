// The trace verb: fetch and render a running server's retained request
// traces over the wire (the TRACES opcode).
//
//	dbpl trace [-follow] [-every 2s] addr
//
// One shot prints every retained span tree, newest first. -follow polls
// the ring every -every interval and prints only traces not seen before
// (oldest first, so the terminal reads chronologically), until
// interrupted. The server records traces when started with
// -trace-sample; a server with tracing off answers an empty set, which
// one-shot mode reports explicitly.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"time"

	"dbpl/client"
	"dbpl/internal/telemetry/trace"
)

func runTrace(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("trace", flag.ContinueOnError)
	follow := fs.Bool("follow", false, "poll for new traces until interrupted")
	every := fs.Duration("every", 2*time.Second, "poll interval with -follow")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return errors.New("usage: dbpl trace [-follow] [-every 2s] addr")
	}
	c, err := client.Dial(fs.Arg(0), nil)
	if err != nil {
		return err
	}
	defer c.Close()

	if !*follow {
		ds, err := c.Traces()
		if err != nil {
			return err
		}
		if len(ds) == 0 {
			fmt.Fprintln(out, "dbpl trace: no traces retained (is the server running with -trace-sample?)")
			return nil
		}
		for _, d := range ds {
			writeTrace(out, d)
		}
		return nil
	}

	// Follow mode: the ring keeps IDs unique (a retried request reuses
	// its wire trace ID, but the ring holds one tree per recording), so
	// de-duplicating on ID across polls is exact.
	seen := map[uint64]bool{}
	first := true
	for {
		ds, err := c.Traces()
		if err != nil {
			return err
		}
		// Newest-first from the server; print new ones oldest-first.
		for i := len(ds) - 1; i >= 0; i-- {
			if seen[ds[i].ID] {
				continue
			}
			seen[ds[i].ID] = true
			if first {
				// The backlog predates this invocation; skip it so follow
				// mode shows what happens from now on.
				continue
			}
			writeTrace(out, ds[i])
		}
		first = false
		time.Sleep(*every)
	}
}

// writeTrace renders one span tree followed by a blank separator line.
func writeTrace(out io.Writer, d client.Trace) {
	trace.WriteText(out, d)
	fmt.Fprintln(out)
}
