package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dbpl/internal/lang"
	"dbpl/internal/persist/intrinsic"
)

func TestBalanced(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{"let x = 1;", true},
		{"let f = fun(x: Int): Int is (", false},
		{"{A = 1, B = [1, 2]};", true},
		{"{A = (1", false},
		{`"an (unbalanced string"`, true}, // brackets in strings don't count
		{`"unterminated`, false},
		{"-- a comment with ( and {\n1;", true},
		{"'single (quoted'", true},
		{`"escaped \" quote"`, true},
		{"[(])", true}, // only depth is tracked, the parser rejects later
	}
	for _, c := range cases {
		if got := balanced(c.src); got != c.want {
			t.Errorf("balanced(%q) = %v, want %v", c.src, got, c.want)
		}
	}
}

// TestScriptTour runs the bundled tour script through a full interpreter
// session with stores attached, as the dbpl command would.
func TestScriptTour(t *testing.T) {
	src, err := os.ReadFile("../../examples/scripts/tour.dbpl")
	if err != nil {
		t.Fatal(err)
	}
	st, err := intrinsic.Open(filepath.Join(t.TempDir(), "tour.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var out bytes.Buffer
	in := lang.New(&out)
	in.Intrinsic = st
	if _, err := in.Run(string(src)); err != nil {
		t.Fatalf("tour script failed: %v", err)
	}
	for _, want := range []string{
		"persons: 3",
		"employees: 2",
		"first employee: E1",
		"join demo: {Emp_no = 1234, Name = 'J Doe'}",
		"figure-1-style join size: 2",
		"area total: 13.0",
		"query: list({Where = 3, Who = 'J Doe'}, {Where = 1, Who = 'M Dee'})",
		"committed",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("tour output missing %q; got:\n%s", want, out.String())
		}
	}
}
