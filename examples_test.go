package dbpl_test

import (
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesRun executes every example end to end with `go run`. Each
// must exit zero; a few key output lines are checked so a silently broken
// example cannot pass. Skipped under -short.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples are end-to-end; skipped with -short")
	}
	cases := []struct {
		dir  string
		want []string
	}{
		{"quickstart", []string{"Employee ≤ Person: true", "persons in the language db: 2"}},
		{"figure1", []string{"matches the paper's published Figure 1"}},
		{"employees", []string{"derived extents = declared class extents", "employee names"}},
		{"parkinglot", []string{"lot income", "turbine #77 is an INDIVIDUAL"}},
		{"billofmaterials", []string{"memo fields are transient", "catalogue reopened without memo fields"}},
		{"evolution", []string{"enriched the schema to the meet", "rejected as expected"}},
		{"textsearch", []string{"inverted index", "persistence AND database"}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.dir, func(t *testing.T) {
			t.Parallel()
			out, err := exec.Command("go", "run", "./examples/"+c.dir).CombinedOutput()
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", c.dir, err, out)
			}
			for _, want := range c.want {
				if !strings.Contains(string(out), want) {
					t.Errorf("example %s output missing %q:\n%s", c.dir, want, out)
				}
			}
		})
	}
}

// TestREPL drives the interactive loop of cmd/dbpl over a pipe: multi-line
// input accumulates until brackets balance, errors are reported and the
// session continues, state persists across inputs.
func TestREPL(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end; skipped with -short")
	}
	input := strings.Join([]string{
		`let x = 40;`,
		`x + 2;`,
		`let f = fun(n: Int): Int is`, // multi-line: no semicolon yet
		`  n * 10;`,
		`f(x);`,
		`1 + true;`, // a type error must not kill the session
		`"still alive";`,
	}, "\n") + "\n"
	cmd := exec.Command("go", "run", "./cmd/dbpl")
	cmd.Stdin = strings.NewReader(input)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("repl failed: %v\n%s", err, out)
	}
	for _, want := range []string{
		"x : Int = 40",
		"42 : Int",
		"400 : Int",
		"type error",
		"'still alive' : String",
	} {
		if !strings.Contains(string(out), want) {
			t.Errorf("repl output missing %q:\n%s", want, out)
		}
	}
}

// TestScriptRunner exercises cmd/dbpl end to end on the tour script.
func TestScriptRunner(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end; skipped with -short")
	}
	store := t.TempDir() + "/tour.log"
	out, err := exec.Command("go", "run", "./cmd/dbpl",
		"-store", store, "-q", "examples/scripts/tour.dbpl").CombinedOutput()
	if err != nil {
		t.Fatalf("dbpl runner failed: %v\n%s", err, out)
	}
	for _, want := range []string{"persons: 3", "committed"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("runner output missing %q:\n%s", want, out)
		}
	}

	// The replicating-persistence script, with a -rep store attached.
	out, err = exec.Command("go", "run", "./cmd/dbpl",
		"-rep", t.TempDir(), "-q", "examples/scripts/replicating.dbpl").CombinedOutput()
	if err != nil {
		t.Fatalf("replicating script failed: %v\n%s", err, out)
	}
	for _, want := range []string{
		"interned employees: 1",
		"after un-externed modification, still: 1",
		"typeof survives: true",
	} {
		if !strings.Contains(string(out), want) {
			t.Errorf("replicating output missing %q:\n%s", want, out)
		}
	}
}
