// Package dbpl is a Go realization of Buneman & Atkinson's "Inheritance and
// Persistence in Database Programming Languages" (SIGMOD 1986): a database
// programming toolkit in which *type*, *extent* and *persistence* are three
// separate, freely combinable notions.
//
//   - Types (structural records with subtyping, bounded quantification,
//     Dynamic) live in a runtime-modeled type system; values carry an
//     information ordering ⊑ with a partial join ⊔.
//   - Extents are derived, not declared: a Database is a heterogeneous
//     collection of dynamics and Get(db, T) extracts everything whose type
//     is a subtype of T — the paper's Get : ∀t. Database → List[∃t'≤t].
//   - Persistence comes in the paper's three flavours — all-or-nothing
//     snapshots, replicating extern/intern, and intrinsic reachability-based
//     stores with commit and subtype-driven schema evolution.
//
// Generalized relations (cochains of partial records, Figure 1's join),
// classical 1NF relations, functional-dependency theory, Taxis/Adaplex-style
// class constructs, and a complete statically typed database programming
// language (package lang, runnable via cmd/dbpl) are built on the same
// substrate. This package is the curated public surface; examples/ shows it
// in use, and DESIGN.md maps every subsystem to the paper.
package dbpl

import (
	"io"

	"dbpl/internal/class"
	"dbpl/internal/core"
	"dbpl/internal/dynamic"
	"dbpl/internal/fd"
	"dbpl/internal/lang"
	"dbpl/internal/persist/intrinsic"
	"dbpl/internal/persist/replicating"
	"dbpl/internal/persist/snapshot"
	"dbpl/internal/relation"
	"dbpl/internal/types"
	"dbpl/internal/value"
)

// ---------------------------------------------------------------------------
// Types
// ---------------------------------------------------------------------------

// Type is a structural type: records, variants, lists, sets, functions,
// Dynamic, bounded quantifiers and recursive types.
type Type = types.Type

// Basic types.
var (
	Int     = types.Int
	Float   = types.Float
	String  = types.String
	Bool    = types.Bool
	Unit    = types.Unit
	Top     = types.Top
	Bottom  = types.Bottom
	Dyn     = types.Dynamic
	TypeRep = types.TypeRep
)

// ParseType reads a type from its concrete syntax, e.g.
// "{Name: String, Age: Int}" or "forall t . List[t] -> Int".
func ParseType(src string) (Type, error) { return types.Parse(src) }

// MustParseType is ParseType but panics on error.
func MustParseType(src string) Type { return types.MustParse(src) }

// Subtype reports s ≤ t.
func Subtype(s, t Type) bool { return types.Subtype(s, t) }

// InternedType is the canonical handle of an equivalence class of types:
// alpha-equivalent types intern to the same handle, so equivalence is
// pointer comparison and repeated subtype checks are pointer-keyed cache
// hits. The database engine shards and indexes extents by it.
type InternedType = types.Interned

// InternType returns the canonical handle for t.
func InternType(t Type) *InternedType { return types.Intern(t) }

// EqualTypes reports type equivalence (mutual subtyping).
func EqualTypes(s, t Type) bool { return types.Equal(s, t) }

// JoinTypes returns the least upper bound of two types.
func JoinTypes(s, t Type) Type { return types.Join(s, t) }

// MeetTypes returns the greatest lower bound and whether it is inhabited.
func MeetTypes(s, t Type) (Type, bool) { return types.Meet(s, t) }

// Consistent reports whether two types share an inhabited subtype — the
// paper's condition for schema enrichment at a persistent handle.
func Consistent(s, t Type) bool { return types.Consistent(s, t) }

// ---------------------------------------------------------------------------
// Values and object-level inheritance
// ---------------------------------------------------------------------------

// Value is an object in the database domain.
type Value = value.Value

// Record is a mutable record object with identity.
type Record = value.Record

// Rec builds a record from label/value pairs:
// Rec("Name", Str("J Doe"), "Age", IntV(30)).
func Rec(pairs ...any) *Record { return value.Rec(pairs...) }

// IntV, FloatV, Str and BoolV build atoms.
func IntV(v int64) Value     { return value.Int(v) }
func FloatV(v float64) Value { return value.Float(v) }
func Str(v string) Value     { return value.String(v) }
func BoolV(v bool) Value     { return value.Bool(v) }

// NewList builds a list value.
func NewList(elems ...Value) *value.List { return value.NewList(elems...) }

// NewSet builds a set value (deduplicated by structural equality).
func NewSet(elems ...Value) *value.Set { return value.NewSet(elems...) }

// TypeOf returns a value's most specific type.
func TypeOf(v Value) Type { return value.TypeOf(v) }

// Conforms reports whether v can be used at type t.
func Conforms(v Value, t Type) bool { return value.Conforms(v, t) }

// Leq is the information ordering o ⊑ o': o' contains at least the
// information of o.
func Leq(o, op Value) bool { return value.Leq(o, op) }

// JoinValues is the paper's ⊔: the least object containing the information
// of both, or an error if they conflict on a common component.
func JoinValues(a, b Value) (Value, error) { return value.Join(a, b) }

// EqualValues reports deep structural equality.
func EqualValues(a, b Value) bool { return value.Equal(a, b) }

// ---------------------------------------------------------------------------
// Dynamics
// ---------------------------------------------------------------------------

// Dynamic is a value paired with its type (Amber's Dynamic).
type Dynamic = dynamic.Dynamic

// MakeDynamic pairs a value with its most specific type.
func MakeDynamic(v Value) *Dynamic { return dynamic.Make(v) }

// MakeDynamicAt pairs a value with a declared (super)type.
func MakeDynamicAt(v Value, t Type) (*Dynamic, error) { return dynamic.MakeAt(v, t) }

// ---------------------------------------------------------------------------
// The database and the generic Get
// ---------------------------------------------------------------------------

// Database is a heterogeneous collection of dynamics with the generic Get.
type Database = core.Database

// Packed is an element of Get's result: value + witness type, the concrete
// form of the existential ∃t'≤t.
type Packed = core.Packed

// Getter is the extraction interface every Get implementation satisfies.
type Getter = core.Getter

// Get strategies (the E2 ablation).
const (
	StrategyScan    = core.StrategyScan
	StrategyIndexed = core.StrategyIndexed
)

// NewDatabase returns an empty database using the given Get strategy.
func NewDatabase(s core.Strategy) *Database { return core.New(s) }

// GetType is the Cardelli–Wegner type of Get itself:
// forall t . List[Dynamic] -> List[exists u <= t . u].
var GetType = core.GetType

// ---------------------------------------------------------------------------
// Relations
// ---------------------------------------------------------------------------

// Relation is a generalized relation: a cochain of partial records under ⊑.
type Relation = relation.Relation

// Flat is a classical first-normal-form relation.
type Flat = relation.Flat

// NewRelation returns a generalized relation seeded with objects (inserted
// with subsumption).
func NewRelation(objects ...Value) *Relation { return relation.New(objects...) }

// NewKeyedRelation returns a relation with key attributes; keys forbid
// comparable members.
func NewKeyedRelation(key ...string) *Relation { return relation.NewKeyed(key...) }

// JoinRelations is the generalized natural join of the paper's Figure 1.
func JoinRelations(r, s *Relation) *Relation { return relation.Join(r, s) }

// JoinRelationsFast is JoinRelations with hash partitioning on a shared
// atomic attribute; identical results, faster on large inputs.
func JoinRelationsFast(r, s *Relation) *Relation { return relation.JoinFast(r, s) }

// Project restricts members to the given labels.
func Project(r *Relation, labels ...string) *Relation { return relation.Project(r, labels...) }

// ExtractByType filters a relation to the members whose type is a subtype
// of t — the paper's "join with the type seen as a very large relation".
func ExtractByType(r *Relation, t Type) *Relation { return relation.ExtractByType(r, t) }

// NewFlat returns an empty 1NF relation over the given attributes.
func NewFlat(attrs ...string) *Flat { return relation.NewFlat(attrs...) }

// Aggregate is a per-group fold for GroupBy; build with Count, CountAll,
// Sum, Min and Max.
type Aggregate = relation.Aggregate

// Aggregate constructors.
var (
	Count    = relation.Count
	CountAll = relation.CountAll
	Sum      = relation.Sum
	Min      = relation.Min
	Max      = relation.Max
)

// GroupBy groups a generalized relation by attributes and applies the
// aggregates within each group.
func GroupBy(r *Relation, by []string, aggs ...Aggregate) (*Relation, error) {
	return relation.GroupBy(r, by, aggs...)
}

// FD is a functional dependency; Dep builds one from comma-separated
// attribute lists.
type FD = fd.FD

// Dep builds the dependency from → to: Dep("Name", "Dept,Floor").
func Dep(from, to string) FD { return fd.Dep(from, to) }

// FDImplies reports whether a set of dependencies implies another.
func FDImplies(fds []FD, f FD) bool { return fd.Implies(fds, f) }

// ---------------------------------------------------------------------------
// Classes (the constructs the paper shows to be derivable)
// ---------------------------------------------------------------------------

// Schema is a set of Taxis/Adaplex-style class declarations.
type Schema = class.Schema

// Class is a declared class; Object is one of its instances.
type (
	Class  = class.Class
	Object = class.Object
)

// Class kinds.
const (
	VariableClass  = class.VariableClass
	AggregateClass = class.AggregateClass
)

// NewSchema returns an empty class schema.
func NewSchema() *Schema { return class.NewSchema() }

// ---------------------------------------------------------------------------
// Persistence
// ---------------------------------------------------------------------------

// Store is an intrinsically persistent store: named handles, reachability,
// commit/abort, garbage collection and schema evolution.
type Store = intrinsic.Store

// Namespace is an isolated view of a Store with controlled sharing between
// namespaces (the paper's multiple-name-space requirement).
type Namespace = intrinsic.Namespace

// OpenStore opens (or creates) an intrinsic store at path.
func OpenStore(path string) (*Store, error) { return intrinsic.Open(path) }

// ReplicatingStore is an extern/intern store of replicated images.
type ReplicatingStore = replicating.Store

// OpenReplicating opens (or creates) a replicating store rooted at dir.
func OpenReplicating(dir string) (*ReplicatingStore, error) { return replicating.Open(dir) }

// Environment is a whole-session image for all-or-nothing persistence.
type Environment = snapshot.Environment

// NewEnvironment returns an empty environment; use snapshot Save/Resume via
// SaveEnvironment and ResumeEnvironment.
func NewEnvironment() *Environment { return snapshot.NewEnvironment() }

// SaveEnvironment writes a whole-session snapshot.
func SaveEnvironment(w io.Writer, e *Environment) error { return snapshot.Save(w, e) }

// ResumeEnvironment reads a snapshot written by SaveEnvironment.
func ResumeEnvironment(r io.Reader) (*Environment, error) { return snapshot.Resume(r) }

// ---------------------------------------------------------------------------
// The language
// ---------------------------------------------------------------------------

// Interp is a session of the database programming language.
type Interp = lang.Interp

// NewInterp returns a fresh interpreter writing program output to out
// (nil means standard output). Attach stores via the Replicating and
// Intrinsic fields to enable extern/intern and persistent declarations.
func NewInterp(out io.Writer) *Interp { return lang.New(out) }
