package client

import (
	"testing"

	"dbpl/internal/server/wire"
)

// BenchmarkPing measures the full client round trip with and without
// trace stamping, -benchmem being the point: stamping a trace ID onto a
// request must not cost an allocation over the untraced path (the E15
// addendum in EXPERIMENTS.md). The frame is encoded into the
// connection's reused buffer either way; AppendTracedFrame splices the
// trace field in place instead of building a fresh field slice.
func BenchmarkPing(b *testing.B) {
	for _, bc := range []struct {
		name    string
		noTrace bool
	}{
		{"traced", false},
		{"untraced", true},
	} {
		b.Run(bc.name, func(b *testing.B) {
			addr := fakeServer(b, answerPings)
			c, err := Dial(addr, &Options{PoolSize: 1, DisableTrace: bc.noTrace})
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			if err := c.Ping(); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.Ping(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestTracedStampWriteSideAllocs pins the write-side cost of trace
// stamping: encoding a traced frame into a reused buffer allocates
// nothing, for a request shape the client actually sends (a GET).
func TestTracedStampWriteSideAllocs(t *testing.T) {
	buf := make([]byte, 0, 256)
	name := []byte("account")
	if n := testing.AllocsPerRun(200, func() {
		var err error
		buf, err = wire.AppendTracedFrame(buf[:0], 0, wire.OpGet, nextTrace(), name)
		if err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("traced frame encode allocates %v times per request, want 0", n)
	}
}
