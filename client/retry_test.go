package client

import (
	"bytes"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"dbpl/internal/server/wire"
	"dbpl/internal/value"
)

// shedServer refuses the first n post-dial requests with CodeOverloaded
// (carrying hint as the retry-after), then answers OK. It records every
// frame it sees.
type shedServer struct {
	mu     sync.Mutex
	sheds  int
	hint   time.Duration
	frames []recordedFrame
}

type recordedFrame struct {
	op     byte
	fields [][]byte
}

func (s *shedServer) serve(conn net.Conn) {
	defer conn.Close()
	for {
		rawOp, rawFields, err := wire.ReadFrame(conn, 0)
		if err != nil {
			return
		}
		// Strip the trace extension like a real server would; the frames
		// the test asserts on are the base frames. Responses go back
		// untraced — the client must tolerate that (old-server compat).
		op, _, fields, _, err := wire.SplitTrace(rawOp, rawFields)
		if err != nil {
			return
		}
		s.mu.Lock()
		if op != wire.OpPing { // ignore Dial's liveness ping
			cp := make([][]byte, len(fields))
			for i, f := range fields {
				cp[i] = bytes.Clone(f)
			}
			s.frames = append(s.frames, recordedFrame{op, cp})
		}
		shed := op != wire.OpPing && s.sheds > 0
		if shed {
			s.sheds--
		}
		hint := s.hint
		s.mu.Unlock()
		switch {
		case shed:
			err = wire.WriteFrame(conn, 0, wire.OpError,
				wire.ErrorFields(&wire.WireError{Code: wire.CodeOverloaded,
					Msg: "shed", RetryAfter: hint})...)
		case op == wire.OpDelete:
			err = wire.WriteFrame(conn, 0, wire.OpOK, []byte{1})
		default:
			err = wire.WriteFrame(conn, 0, wire.OpOK)
		}
		if err != nil {
			return
		}
	}
}

func (s *shedServer) recorded() []recordedFrame {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]recordedFrame(nil), s.frames...)
}

// TestRetryOnOverloadHonorsHint: an overload shed is retried after at
// least the server's retry-after hint, and the call ultimately succeeds.
func TestRetryOnOverloadHonorsHint(t *testing.T) {
	srv := &shedServer{sheds: 2, hint: 120 * time.Millisecond}
	addr := fakeServer(t, srv.serve)
	c, err := Dial(addr, &Options{PoolSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	start := time.Now()
	if err := c.Put("k", value.Int(1), nil); err != nil {
		t.Fatalf("Put through 2 sheds: %v", err)
	}
	// Two sheds, each waited >= hint before the retry.
	if el := time.Since(start); el < 2*srv.hint {
		t.Errorf("retried call took %v, want >= %v (the hint twice)", el, 2*srv.hint)
	}
	if got := len(srv.recorded()); got != 3 {
		t.Errorf("server saw %d PUT frames, want 3 (2 sheds + success)", got)
	}
}

// TestRetryBudgetExhaustionReturnsOverloaded: when every attempt is shed,
// the caller gets the typed ErrOverloaded back — dispatchable, not
// swallowed into a generic retry failure.
func TestRetryBudgetExhaustionReturnsOverloaded(t *testing.T) {
	srv := &shedServer{sheds: 1 << 30}
	addr := fakeServer(t, srv.serve)
	c, err := Dial(addr, &Options{
		PoolSize: 1,
		RetryPolicy: RetryPolicy{
			MaxAttempts: 3,
			BaseDelay:   time.Millisecond,
			MaxDelay:    2 * time.Millisecond,
			Budget:      50 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	err = c.Put("k", value.Int(1), nil)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("exhausted retries = %v, want ErrOverloaded", err)
	}
	if got := len(srv.recorded()); got != 3 {
		t.Errorf("server saw %d attempts, want exactly MaxAttempts=3", got)
	}
}

// TestRetriedWritesCarrySameKey: every attempt of one Put resends the
// identical 16-byte idempotency key (dedup depends on it), and distinct
// writes get distinct keys.
func TestRetriedWritesCarrySameKey(t *testing.T) {
	srv := &shedServer{sheds: 2}
	addr := fakeServer(t, srv.serve)
	c, err := Dial(addr, &Options{PoolSize: 1, RetryPolicy: RetryPolicy{
		BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Put("k", value.Int(1), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Delete("k"); err != nil {
		t.Fatal(err)
	}

	frames := srv.recorded()
	if len(frames) != 4 { // 3 PUT attempts + 1 DELETE
		t.Fatalf("server saw %d frames, want 4", len(frames))
	}
	keyOf := func(f recordedFrame) []byte {
		last := f.fields[len(f.fields)-1]
		if len(last) != 16 {
			t.Fatalf("op %#x key field is %d bytes, want 16", f.op, len(last))
		}
		return last
	}
	putKey := keyOf(frames[0])
	for i := 1; i < 3; i++ {
		if frames[i].op != wire.OpPut {
			t.Fatalf("frame %d op = %#x, want retried PUT", i, frames[i].op)
		}
		if !bytes.Equal(keyOf(frames[i]), putKey) {
			t.Errorf("retry %d changed the idempotency key: %x vs %x", i, keyOf(frames[i]), putKey)
		}
	}
	if frames[3].op != wire.OpDelete {
		t.Fatalf("frame 3 op = %#x, want DELETE", frames[3].op)
	}
	if bytes.Equal(keyOf(frames[3]), putKey) {
		t.Error("DELETE reused the PUT's idempotency key")
	}
}

// TestRetryDisabledSurfacesFirstError: MaxAttempts < 1 turns the wrapper
// off — one attempt, the raw typed error back.
func TestRetryDisabledSurfacesFirstError(t *testing.T) {
	srv := &shedServer{sheds: 1 << 30}
	addr := fakeServer(t, srv.serve)
	c, err := Dial(addr, &Options{PoolSize: 1, RetryPolicy: RetryPolicy{MaxAttempts: -1}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Put("k", value.Int(1), nil); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if got := len(srv.recorded()); got != 1 {
		t.Errorf("server saw %d attempts with retries disabled, want 1", got)
	}
}

// TestRequestTimeoutSemanticsUnderRetry: the documented RequestTimeout
// contract — 0 means the 30s default, negative disables — must survive
// the retry wrapper, with the timeout bounding each attempt.
func TestRequestTimeoutSemanticsUnderRetry(t *testing.T) {
	// The accessor itself is the contract.
	if got := (Options{}).requestTimeout(); got != 30*time.Second {
		t.Errorf("requestTimeout(0) = %v, want the 30s default", got)
	}
	if got := (Options{RequestTimeout: -1}).requestTimeout(); got != 0 {
		t.Errorf("requestTimeout(-1) = %v, want 0 (disabled)", got)
	}
	if got := (Options{RequestTimeout: time.Millisecond}).requestTimeout(); got != time.Millisecond {
		t.Errorf("requestTimeout(1ms) = %v", got)
	}

	// Per-attempt: a black-hole server times out every attempt, so a
	// 2-attempt call takes >= 2 timeouts and returns ErrDeadline.
	var responsive sync.Map
	responsive.Store("on", true)
	addr := fakeServer(t, func(conn net.Conn) {
		defer conn.Close()
		if on, _ := responsive.Load("on"); on.(bool) {
			answerPings(conn)
			return
		}
		buf := make([]byte, 1024)
		for {
			if _, err := conn.Read(buf); err != nil {
				return
			}
		}
	})
	c, err := Dial(addr, &Options{
		PoolSize:       1,
		RequestTimeout: 100 * time.Millisecond,
		RetryPolicy: RetryPolicy{MaxAttempts: 2,
			BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	responsive.Store("on", false)
	c.mu.Lock()
	c.pool[0].fail(errors.New("test: condemned")) // force redial onto the black hole
	c.mu.Unlock()

	start := time.Now()
	err = c.Ping()
	el := time.Since(start)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("Ping against a black hole = %v, want ErrDeadline", err)
	}
	if el < 200*time.Millisecond {
		t.Errorf("2 attempts took %v, want >= 200ms (the timeout bounds each attempt)", el)
	}
	if el > 2*time.Second {
		t.Errorf("2 attempts took %v, want well under a second", el)
	}

	// RequestTimeout = -1 disables the deadline: a slow server does not
	// kill the call.
	slow := fakeServer(t, func(conn net.Conn) {
		defer conn.Close()
		first := true
		for {
			if _, _, err := wire.ReadFrame(conn, 0); err != nil {
				return
			}
			if !first {
				time.Sleep(300 * time.Millisecond)
			}
			first = false
			if err := wire.WriteFrame(conn, 0, wire.OpOK); err != nil {
				return
			}
		}
	})
	c2, err := Dial(slow, &Options{PoolSize: 1, RequestTimeout: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if err := c2.Ping(); err != nil {
		t.Fatalf("Ping with RequestTimeout=-1 against a slow server: %v", err)
	}
}
