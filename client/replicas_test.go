package client

import (
	"context"
	"errors"
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"dbpl/internal/persist/intrinsic"
	"dbpl/internal/server"
	"dbpl/internal/server/netfault"
	"dbpl/internal/server/wire"
	"dbpl/internal/value"
)

// bootReplSrv boots a real server for the fan-out tests (the fakeServer
// harness cannot speak the replication stream). It returns the address,
// the store (for convergence polling), and an idempotent stop.
func bootReplSrv(t *testing.T, path string, cfg server.Config) (string, *intrinsic.Store, func()) {
	t.Helper()
	st, err := intrinsic.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(st, cfg)
	if err != nil {
		st.Close()
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		st.Close()
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	var once sync.Once
	stop := func() {
		once.Do(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
			<-done
			st.Close()
		})
	}
	t.Cleanup(stop)
	return ln.Addr().String(), st, stop
}

func waitCaughtUp(t *testing.T, p, f *intrinsic.Store) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for p.DurableEnd() != f.DurableEnd() || p.DurableEnd() <= intrinsic.HeaderSize {
		if time.Now().After(deadline) {
			t.Fatalf("follower stuck at %d, primary at %d", f.DurableEnd(), p.DurableEnd())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// waitEligible polls until the prober has put a replica into rotation for
// the client's current write stamp.
func waitEligible(t *testing.T, c *Client) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for c.reps.pick() == nil {
		if time.Now().After(deadline) {
			t.Fatal("no replica ever became eligible")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestReplicaReadFanOut: with a caught-up follower configured, an
// idempotent read is served by the replica — the replica-read counter
// moves, the fallback counter does not, and the data is the primary's.
func TestReplicaReadFanOut(t *testing.T) {
	dir := t.TempDir()
	paddr, pst, _ := bootReplSrv(t, filepath.Join(dir, "p.log"), server.Config{})
	faddr, fst, _ := bootReplSrv(t, filepath.Join(dir, "f.log"),
		server.Config{Follow: paddr, ReplHeartbeat: 50 * time.Millisecond})

	c, err := Dial(paddr, &Options{Replicas: []string{faddr}, ReplicaProbe: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Put("greeting", value.String("hello"), nil); err != nil {
		t.Fatal(err)
	}
	waitCaughtUp(t, pst, fst)
	waitEligible(t, c)

	names, err := c.Names()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "greeting" {
		t.Fatalf("replica NAMES = %v, want [greeting]", names)
	}
	if reads := c.m.replicaReads.Value(); reads < 1 {
		t.Errorf("replica reads = %d, want >= 1 (read did not fan out)", reads)
	}
	if fb := c.m.replicaFallbacks.Value(); fb != 0 {
		t.Errorf("replica fallbacks = %d, want 0", fb)
	}
}

// TestReadYourWritesPinning: after a write, reads pin to the primary
// until a probe proves the replica caught up — so a session sees its own
// writes even when replication is severed entirely.
func TestReadYourWritesPinning(t *testing.T) {
	dir := t.TempDir()
	paddr, pst, _ := bootReplSrv(t, filepath.Join(dir, "p.log"), server.Config{})
	px, err := netfault.New(paddr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { px.Close() })
	faddr, fst, _ := bootReplSrv(t, filepath.Join(dir, "f.log"),
		server.Config{Follow: px.Addr(), ReplHeartbeat: 50 * time.Millisecond})

	c, err := Dial(paddr, &Options{Replicas: []string{faddr}, ReplicaProbe: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Put("old", value.Int(1), nil); err != nil {
		t.Fatal(err)
	}
	waitCaughtUp(t, pst, fst)
	waitEligible(t, c)

	// Sever replication, then write. The follower can never see this
	// write, so every read until it catches up must go to the primary.
	px.Partition()
	if err := c.Put("new", value.Int(2), nil); err != nil {
		t.Fatal(err)
	}
	pinnedReads := c.m.replicaReads.Value()
	for i := 0; i < 5; i++ {
		names, err := c.Names()
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, n := range names {
			found = found || n == "new"
		}
		if !found {
			t.Fatalf("read %d missed our own write: NAMES = %v", i, names)
		}
		time.Sleep(15 * time.Millisecond) // span several probe cycles
	}
	if got := c.m.replicaReads.Value(); got != pinnedReads {
		t.Errorf("replica served %d reads while stale (pinning broken)", got-pinnedReads)
	}

	// Heal: once a probe proves catch-up past the write stamp, the
	// replica re-enters rotation.
	px.Heal()
	waitCaughtUp(t, pst, fst)
	waitEligible(t, c)
}

// TestReplicaFallbackToPrimary: a replica dying between probes costs one
// failed attempt, not the read — the client falls back to the primary and
// takes the replica out of rotation itself.
func TestReplicaFallbackToPrimary(t *testing.T) {
	dir := t.TempDir()
	paddr, pst, _ := bootReplSrv(t, filepath.Join(dir, "p.log"), server.Config{})
	faddr, fst, stopFollower := bootReplSrv(t, filepath.Join(dir, "f.log"),
		server.Config{Follow: paddr, ReplHeartbeat: 50 * time.Millisecond})

	// Seed through a separate client so the fan-out client's write stamp
	// stays zero: its very first probe (before the hour-long tick) proves
	// eligibility, and no later probe runs to notice the follower died.
	w, err := Dial(paddr, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Put("k", value.Int(7), nil); err != nil {
		t.Fatal(err)
	}
	w.Close()
	waitCaughtUp(t, pst, fst)

	c, err := Dial(paddr, &Options{Replicas: []string{faddr}, ReplicaProbe: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	waitEligible(t, c)

	stopFollower()
	names, err := c.Names()
	if err != nil {
		t.Fatalf("read with dead replica: %v", err)
	}
	if len(names) != 1 || names[0] != "k" {
		t.Fatalf("NAMES = %v, want [k]", names)
	}
	if fb := c.m.replicaFallbacks.Value(); fb != 1 {
		t.Errorf("replica fallbacks = %d, want 1", fb)
	}
	if c.reps.reps[0].healthy.Load() {
		t.Error("dead replica still marked healthy after a failed read")
	}
	// The next read goes straight to the primary: no second fallback.
	if _, err := c.Names(); err != nil {
		t.Fatal(err)
	}
	if fb := c.m.replicaFallbacks.Value(); fb != 1 {
		t.Errorf("replica fallbacks = %d after second read, want still 1", fb)
	}
}

// TestReadOnlyRefusalNotRetried: a follower's write refusal is a definite
// answer — retrying it could never succeed — so the retry loop must
// surface ErrReadOnly after exactly one attempt.
func TestReadOnlyRefusalNotRetried(t *testing.T) {
	dir := t.TempDir()
	paddr, pst, _ := bootReplSrv(t, filepath.Join(dir, "p.log"), server.Config{})
	faddr, fst, _ := bootReplSrv(t, filepath.Join(dir, "f.log"),
		server.Config{Follow: paddr, ReplHeartbeat: 50 * time.Millisecond})
	w, err := Dial(paddr, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Put("k", value.Int(1), nil); err != nil {
		t.Fatal(err)
	}
	w.Close()
	waitCaughtUp(t, pst, fst)

	c, err := Dial(faddr, &Options{RetryPolicy: RetryPolicy{MaxAttempts: 8, Budget: -1}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Put("x", value.Int(2), nil); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Put on follower: %v, want ErrReadOnly", err)
	}
	if n := c.m.attempts[wire.OpPut].Value(); n != 1 {
		t.Errorf("PUT attempts = %d, want exactly 1 (read-only must not be retried)", n)
	}
}
