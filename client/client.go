// Package client is the Go client for `dbpl serve` (internal/server): a
// connection-pooled, pipelining front end to the remote store.
//
// A Client multiplexes stateless requests (Get, Put, Delete, Join, Names,
// Ping) over a small fixed pool of connections. Each connection pipelines:
// concurrent callers write their frames back to back and a single reader
// goroutine matches responses to callers in FIFO order, so N in-flight
// requests cost one round trip, not N. Dead connections are redialed
// transparently on next use — a client survives a server restart and sees
// exactly the state the server recovered from its log.
//
// Transactions are session-scoped on the server, so Begin pins a dedicated
// connection: the *Session's Put/Delete buffer server-side until Commit
// makes them one durable commit group (Abort discards them). A Session's
// own Get sees its buffered writes; other clients never do.
//
// Failures carry the server's taxonomy: errors returned by remote
// operations unwrap to the wire sentinels (wire.ErrNoRoot, wire.ErrTxn,
// wire.ErrRemoteCorrupt, ...) and remote I/O failures additionally to
// iofault.ErrIOFailed, so errors.Is against a remote store reads the same
// as against a local one.
package client

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dbpl/internal/core"
	"dbpl/internal/persist/codec"
	"dbpl/internal/persist/iofault"
	"dbpl/internal/server/wire"
	"dbpl/internal/types"
	"dbpl/internal/value"
)

// Errors produced locally by the client.
var (
	ErrClosed   = errors.New("client: closed")
	ErrDeadline = errors.New("client: request deadline exceeded")
	ErrDone     = errors.New("client: session already finished")
)

// The remote failure taxonomy, re-exported from the wire protocol
// (which lives under internal/) so programs outside this module can
// dispatch on remote failures with errors.Is.
var (
	ErrBadFrame      = wire.ErrBadFrame
	ErrTooLarge      = wire.ErrTooLarge
	ErrUnknownOp     = wire.ErrUnknownOp
	ErrBadRequest    = wire.ErrBadRequest
	ErrNoRoot        = wire.ErrNoRoot
	ErrNotConforming = wire.ErrNotConforming
	ErrInconsistent  = wire.ErrInconsistent
	ErrTxn           = wire.ErrTxn
	ErrRemoteIO      = wire.ErrRemoteIO
	ErrRemoteCorrupt = wire.ErrRemoteCorrupt
	ErrShutdown      = wire.ErrShutdown
	ErrInternal      = wire.ErrInternal

	// ErrIOFailed is the persistence layer's I/O sentinel
	// (iofault.ErrIOFailed); a remote I/O failure unwraps to it too, so
	// one errors.Is covers local and served stores alike.
	ErrIOFailed = iofault.ErrIOFailed
)

// Options tunes a Client. The zero value is usable.
type Options struct {
	// PoolSize is the number of pooled connections for stateless
	// requests; 0 means 2. Sessions always dial their own.
	PoolSize int
	// MaxFrame bounds frames in both directions; 0 means wire.MaxFrame.
	MaxFrame int
	// DialTimeout bounds connection establishment; 0 means 5s.
	DialTimeout time.Duration
	// RequestTimeout is the per-request deadline, covering the write and
	// the wait for the response; 0 means 30s, negative disables.
	RequestTimeout time.Duration
}

func (o Options) poolSize() int {
	if o.PoolSize <= 0 {
		return 2
	}
	return o.PoolSize
}

func (o Options) maxFrame() int {
	if o.MaxFrame <= 0 {
		return wire.MaxFrame
	}
	return o.MaxFrame
}

func (o Options) dialTimeout() time.Duration {
	if o.DialTimeout <= 0 {
		return 5 * time.Second
	}
	return o.DialTimeout
}

func (o Options) requestTimeout() time.Duration {
	if o.RequestTimeout == 0 {
		return 30 * time.Second
	}
	if o.RequestTimeout < 0 {
		return 0
	}
	return o.RequestTimeout
}

// Packed mirrors core.Packed: a remote object with the witness type it was
// stored at.
type Packed = core.Packed

// Client is a pooled connection to one dbpl server. It is safe for
// concurrent use.
type Client struct {
	addr string
	o    Options

	mu     sync.Mutex
	pool   []*conn // fixed slots, lazily (re)dialed
	closed bool
	next   atomic.Uint64 // round-robin over the pool
}

// Dial connects to a dbpl server, verifying liveness with a Ping.
func Dial(addr string, opts *Options) (*Client, error) {
	var o Options
	if opts != nil {
		o = *opts
	}
	c := &Client{addr: addr, o: o, pool: make([]*conn, o.poolSize())}
	if err := c.Ping(); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// Close closes every pooled connection. Sessions hold their own
// connections and must be finished separately.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	for i, cn := range c.pool {
		if cn != nil {
			cn.fail(ErrClosed)
			c.pool[i] = nil
		}
	}
	return nil
}

// getConn returns a live pooled connection, redialing a dead slot.
func (c *Client) getConn() (*conn, error) {
	slot := int(c.next.Add(1)-1) % len(c.pool)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	cn := c.pool[slot]
	if cn != nil && !cn.isDead() {
		c.mu.Unlock()
		return cn, nil
	}
	c.mu.Unlock()
	// Dial outside the lock; racing callers may dial the same slot, the
	// loser's connection is closed.
	fresh, err := dialConn(c.addr, c.o)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		fresh.fail(ErrClosed)
		return nil, ErrClosed
	}
	if cur := c.pool[slot]; cur != nil && !cur.isDead() {
		fresh.fail(ErrClosed)
		return cur, nil
	}
	c.pool[slot] = fresh
	return fresh, nil
}

func (c *Client) roundTrip(op byte, fields ...[]byte) (byte, [][]byte, error) {
	cn, err := c.getConn()
	if err != nil {
		return 0, nil, err
	}
	return cn.roundTrip(c.o.requestTimeout(), op, fields...)
}

// ---------------------------------------------------------------------------
// Stateless operations
// ---------------------------------------------------------------------------

// Ping checks server liveness.
func (c *Client) Ping() error {
	_, _, err := expect(wire.OpOK)(c.roundTrip(wire.OpPing))
	return err
}

// Get is the paper's generic extraction, remotely: every root whose
// declared type is a subtype of t, packaged with its witness.
func (c *Client) Get(t types.Type) ([]Packed, error) {
	return decodeGet(c.roundTrip(wire.OpGet, mustTypeField(t)))
}

// GetExpr is Get over the concrete type syntax, e.g. "{Name: String}".
func (c *Client) GetExpr(src string) ([]Packed, error) {
	t, err := types.Parse(src)
	if err != nil {
		return nil, err
	}
	return c.Get(t)
}

// Put binds name to v at the declared type (nil means v's most specific
// type) and commits it as one group.
func (c *Client) Put(name string, v value.Value, declared types.Type) error {
	f, err := putFields(name, v, declared)
	if err != nil {
		return err
	}
	_, _, err = expect(wire.OpOK)(c.roundTrip(wire.OpPut, f...))
	return err
}

// Delete unbinds name, reporting whether it existed.
func (c *Client) Delete(name string) (bool, error) {
	return decodeDelete(c.roundTrip(wire.OpDelete, []byte(name)))
}

// Join computes the generalized natural join (the paper's Figure 1) of
// the extents at t1 and t2, remotely.
func (c *Client) Join(t1, t2 types.Type) ([]value.Value, error) {
	ps, err := decodeGet(c.roundTrip(wire.OpJoin, mustTypeField(t1), mustTypeField(t2)))
	if err != nil {
		return nil, err
	}
	out := make([]value.Value, len(ps))
	for i, p := range ps {
		out[i] = p.Value
	}
	return out, nil
}

// Names lists the root names.
func (c *Client) Names() ([]string, error) {
	_, fields, err := expect(wire.OpOK)(c.roundTrip(wire.OpNames))
	if err != nil {
		return nil, err
	}
	out := make([]string, len(fields))
	for i, f := range fields {
		out[i] = string(f)
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Sessions (server-side transactions)
// ---------------------------------------------------------------------------

// Session is one server-side transaction, pinned to its own connection.
// Finish it with Commit or Abort (Close aborts if neither happened).
type Session struct {
	c    *Client
	cn   *conn
	done bool
}

// Begin opens a transaction on a dedicated connection.
func (c *Client) Begin() (*Session, error) {
	cn, err := dialConn(c.addr, c.o)
	if err != nil {
		return nil, err
	}
	if _, _, err := expect(wire.OpOK)(cn.roundTrip(c.o.requestTimeout(), wire.OpBegin)); err != nil {
		cn.fail(ErrClosed)
		return nil, err
	}
	return &Session{c: c, cn: cn}, nil
}

func (s *Session) roundTrip(op byte, fields ...[]byte) (byte, [][]byte, error) {
	if s.done {
		return 0, nil, ErrDone
	}
	return s.cn.roundTrip(s.c.o.requestTimeout(), op, fields...)
}

// Get inside the session sees its own buffered writes overlaid on the
// snapshot pinned at Begin.
func (s *Session) Get(t types.Type) ([]Packed, error) {
	return decodeGet(s.roundTrip(wire.OpGet, mustTypeField(t)))
}

// Put buffers a binding in the transaction.
func (s *Session) Put(name string, v value.Value, declared types.Type) error {
	f, err := putFields(name, v, declared)
	if err != nil {
		return err
	}
	_, _, err = expect(wire.OpOK)(s.roundTrip(wire.OpPut, f...))
	return err
}

// Delete buffers an unbinding, reporting whether the name was bound in
// the session's view.
func (s *Session) Delete(name string) (bool, error) {
	return decodeDelete(s.roundTrip(wire.OpDelete, []byte(name)))
}

// Join runs the generalized join against the session's view.
func (s *Session) Join(t1, t2 types.Type) ([]value.Value, error) {
	ps, err := decodeGet(s.roundTrip(wire.OpJoin, mustTypeField(t1), mustTypeField(t2)))
	if err != nil {
		return nil, err
	}
	out := make([]value.Value, len(ps))
	for i, p := range ps {
		out[i] = p.Value
	}
	return out, nil
}

// Names lists the root names in the session's view.
func (s *Session) Names() ([]string, error) {
	_, fields, err := expect(wire.OpOK)(s.roundTrip(wire.OpNames))
	if err != nil {
		return nil, err
	}
	out := make([]string, len(fields))
	for i, f := range fields {
		out[i] = string(f)
	}
	return out, nil
}

// Commit makes the buffered writes one durable commit group and ends the
// session.
func (s *Session) Commit() error {
	_, _, err := expect(wire.OpOK)(s.roundTrip(wire.OpCommit))
	s.finish()
	return err
}

// Abort discards the buffered writes and ends the session.
func (s *Session) Abort() error {
	_, _, err := expect(wire.OpOK)(s.roundTrip(wire.OpAbort))
	s.finish()
	return err
}

// Close aborts the session if it is still open.
func (s *Session) Close() error {
	if s.done {
		return nil
	}
	return s.Abort()
}

func (s *Session) finish() {
	if !s.done {
		s.done = true
		s.cn.fail(ErrDone)
	}
}

// ---------------------------------------------------------------------------
// Request/response plumbing
// ---------------------------------------------------------------------------

func mustTypeField(t types.Type) []byte {
	b, err := wire.MarshalType(t)
	if err != nil {
		// Every types.Type the package can produce is encodable; an
		// unencodable one is a programming error surfaced loudly.
		panic(fmt.Sprintf("client: unencodable type %s: %v", t, err))
	}
	return b
}

func putFields(name string, v value.Value, declared types.Type) ([][]byte, error) {
	img, err := codec.MarshalTagged(v, declared)
	if err != nil {
		return nil, err
	}
	return [][]byte{[]byte(name), img}, nil
}

// expect checks the response opcode, decoding OpError frames into their
// *wire.WireError.
func expect(want byte) func(byte, [][]byte, error) (byte, [][]byte, error) {
	return func(op byte, fields [][]byte, err error) (byte, [][]byte, error) {
		if err != nil {
			return op, fields, err
		}
		if op == wire.OpError {
			return op, nil, wire.DecodeError(fields)
		}
		if op != want {
			return op, nil, &wire.WireError{Code: wire.CodeBadFrame,
				Msg: fmt.Sprintf("unexpected response opcode %#x", op)}
		}
		return op, fields, nil
	}
}

func decodeGet(op byte, fields [][]byte, err error) ([]Packed, error) {
	if _, fields, err = expect(wire.OpValues)(op, fields, err); err != nil {
		return nil, err
	}
	out := make([]Packed, len(fields))
	for i, f := range fields {
		v, t, err := codec.UnmarshalTagged(f)
		if err != nil {
			return nil, err
		}
		out[i] = Packed{Value: v, Witness: t}
	}
	return out, nil
}

func decodeDelete(op byte, fields [][]byte, err error) (bool, error) {
	if _, fields, err = expect(wire.OpOK)(op, fields, err); err != nil {
		return false, err
	}
	if len(fields) != 1 || len(fields[0]) != 1 {
		return false, &wire.WireError{Code: wire.CodeBadFrame, Msg: "malformed DELETE response"}
	}
	return fields[0][0] == 1, nil
}

// ---------------------------------------------------------------------------
// conn: one pipelining connection
// ---------------------------------------------------------------------------

type result struct {
	op     byte
	fields [][]byte
	err    error
}

// conn is a single connection with FIFO request pipelining: writers append
// a response slot and write their frame under wmu (so slot order equals
// frame order), and the reader goroutine delivers responses to slots in
// order.
type conn struct {
	nc       net.Conn
	maxFrame int

	wmu sync.Mutex // serializes {enqueue, write}

	mu      sync.Mutex
	pending []chan result
	dead    error // sticky; set once by fail
}

func dialConn(addr string, o Options) (*conn, error) {
	nc, err := net.DialTimeout("tcp", addr, o.dialTimeout())
	if err != nil {
		return nil, err
	}
	c := &conn{nc: nc, maxFrame: o.maxFrame()}
	go c.readLoop()
	return c, nil
}

func (c *conn) isDead() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dead != nil
}

// fail marks the connection dead, closes it, and delivers err to every
// in-flight request. Idempotent.
func (c *conn) fail(err error) {
	c.mu.Lock()
	if c.dead != nil {
		c.mu.Unlock()
		return
	}
	c.dead = err
	ps := c.pending
	c.pending = nil
	c.mu.Unlock()
	c.nc.Close()
	for _, ch := range ps {
		ch <- result{err: err}
	}
}

func (c *conn) readLoop() {
	r := bufio.NewReader(c.nc)
	for {
		op, fields, err := wire.ReadFrame(r, c.maxFrame)
		if err != nil {
			c.fail(fmt.Errorf("client: connection lost: %w", err))
			return
		}
		c.mu.Lock()
		if len(c.pending) == 0 {
			c.mu.Unlock()
			c.fail(&wire.WireError{Code: wire.CodeBadFrame, Msg: "unsolicited response"})
			return
		}
		ch := c.pending[0]
		c.pending = c.pending[1:]
		c.mu.Unlock()
		ch <- result{op: op, fields: fields}
	}
}

// roundTrip writes one request and waits for its response. Concurrent
// callers pipeline: their frames are written back to back and answered in
// order. timeout covers the whole round trip; on expiry the connection is
// killed (responses can no longer be matched) and redialed by the pool on
// next use.
func (c *conn) roundTrip(timeout time.Duration, op byte, fields ...[]byte) (byte, [][]byte, error) {
	ch := make(chan result, 1)
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	c.wmu.Lock()
	c.mu.Lock()
	if c.dead != nil {
		err := c.dead
		c.mu.Unlock()
		c.wmu.Unlock()
		return 0, nil, err
	}
	c.pending = append(c.pending, ch)
	c.mu.Unlock()
	c.nc.SetWriteDeadline(deadline)
	err := wire.WriteFrame(c.nc, c.maxFrame, op, fields...)
	c.wmu.Unlock()
	if err != nil {
		c.fail(fmt.Errorf("client: write failed: %w", err))
		r := <-ch // fail delivered to every pending slot, including ours
		if r.err == nil {
			// The response won the race with fail's delivery: the frame
			// reached the server despite the reported write error, and the
			// reader matched its answer to our slot before fail drained it.
			return r.op, r.fields, nil
		}
		return 0, nil, r.err
	}
	if timeout <= 0 {
		r := <-ch
		return r.op, r.fields, r.err
	}
	timer := time.NewTimer(time.Until(deadline))
	defer timer.Stop()
	select {
	case r := <-ch:
		return r.op, r.fields, r.err
	case <-timer.C:
		c.fail(ErrDeadline)
		r := <-ch
		if r.err == nil {
			// The response won the race with fail's delivery.
			return r.op, r.fields, nil
		}
		return 0, nil, r.err
	}
}
