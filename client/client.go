// Package client is the Go client for `dbpl serve` (internal/server): a
// connection-pooled, pipelining front end to the remote store.
//
// A Client multiplexes stateless requests (Get, Put, Delete, Join, Names,
// Ping) over a small fixed pool of connections. Each connection pipelines:
// concurrent callers write their frames back to back and a single reader
// goroutine matches responses to callers in FIFO order, so N in-flight
// requests cost one round trip, not N. Dead connections are redialed
// transparently on next use — a client survives a server restart and sees
// exactly the state the server recovered from its log.
//
// Transactions are session-scoped on the server, so Begin pins a dedicated
// connection: the *Session's Put/Delete buffer server-side until Commit
// makes them one durable commit group (Abort discards them). A Session's
// own Get sees its buffered writes; other clients never do.
//
// # Retries
//
// Every stateless call runs under the Options.RetryPolicy (on by default):
// dial failures, request deadlines, lost connections and CodeOverloaded
// load-shedding refusals are retried with exponential backoff, full
// jitter, and a total sleep budget. Reads (Get, Join, Names, Ping,
// Health) are idempotent and retried as-is; Put and Delete are stamped
// with a client-unique idempotency key that the server deduplicates in a
// bounded LRU of applied write ids, so a retry after a lost
// acknowledgement applies exactly once. See docs/RESILIENCE.md.
//
// Failures carry the server's taxonomy: errors returned by remote
// operations unwrap to the wire sentinels (wire.ErrNoRoot, wire.ErrTxn,
// wire.ErrRemoteCorrupt, ...) and remote I/O failures additionally to
// iofault.ErrIOFailed, so errors.Is against a remote store reads the same
// as against a local one.
package client

import (
	"bufio"
	crand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dbpl/internal/core"
	"dbpl/internal/persist/codec"
	"dbpl/internal/persist/iofault"
	"dbpl/internal/server/wire"
	"dbpl/internal/telemetry"
	"dbpl/internal/types"
	"dbpl/internal/value"
)

// Errors produced locally by the client.
var (
	ErrClosed   = errors.New("client: closed")
	ErrDeadline = errors.New("client: request deadline exceeded")
	ErrDone     = errors.New("client: session already finished")
	// ErrConnLost marks transport failures (a reset, an unexpected close,
	// a failed write): the connection died with the request in flight.
	// Idempotent and key-stamped requests are retried on it.
	ErrConnLost = errors.New("client: connection lost")
)

// The remote failure taxonomy, re-exported from the wire protocol
// (which lives under internal/) so programs outside this module can
// dispatch on remote failures with errors.Is.
var (
	ErrBadFrame      = wire.ErrBadFrame
	ErrTooLarge      = wire.ErrTooLarge
	ErrUnknownOp     = wire.ErrUnknownOp
	ErrBadRequest    = wire.ErrBadRequest
	ErrNoRoot        = wire.ErrNoRoot
	ErrNotConforming = wire.ErrNotConforming
	ErrInconsistent  = wire.ErrInconsistent
	ErrTxn           = wire.ErrTxn
	ErrRemoteIO      = wire.ErrRemoteIO
	ErrRemoteCorrupt = wire.ErrRemoteCorrupt
	ErrShutdown      = wire.ErrShutdown
	ErrInternal      = wire.ErrInternal
	// ErrOverloaded is admission control shedding the request; the retry
	// policy backs off (honoring the server's retry-after hint) and tries
	// again, so callers usually only see it once the budget is exhausted.
	ErrOverloaded = wire.ErrOverloaded
	// ErrDegraded is the server's degraded read-only mode: its write path
	// is poisoned and every write is refused until the process restarts,
	// while reads and Health keep working. Not retryable.
	ErrDegraded = wire.ErrDegraded
	// ErrReadOnly is a replication follower refusing a write: this server
	// never accepts writes, by role, and the refusal names the primary to
	// aim at. Never retryable against the same server — but with
	// Options.Replicas set it triggers failover: the client probes the
	// candidate set for the real primary and replays there.
	ErrReadOnly = wire.ErrReadOnly
	// ErrFenced is a demoted primary refusing a write: a newer primary
	// exists at a higher promotion epoch and this one is permanently
	// read-only (the refusal names its successor). With Options.Replicas
	// set the client fails over — it probes the candidate set for the
	// highest-epoch writable server, re-pins writes there, and replays
	// the in-flight request under its original idempotency key, so the
	// write applies exactly once even across the promotion.
	ErrFenced = wire.ErrFenced

	// ErrIOFailed is the persistence layer's I/O sentinel
	// (iofault.ErrIOFailed); a remote I/O failure unwraps to it too, so
	// one errors.Is covers local and served stores alike.
	ErrIOFailed = iofault.ErrIOFailed
)

// Health is the server's HEALTH self-report (wire.Health re-exported):
// poisoned flag, in-flight count, session count, root count, uptime.
type Health = wire.Health

// Options tunes a Client. The zero value is usable.
type Options struct {
	// PoolSize is the number of pooled connections for stateless
	// requests; 0 means 2. Sessions always dial their own.
	PoolSize int
	// MaxFrame bounds frames in both directions; 0 means wire.MaxFrame.
	MaxFrame int
	// DialTimeout bounds connection establishment; 0 means 5s.
	DialTimeout time.Duration
	// RequestTimeout is the per-request deadline, covering the write and
	// the wait for the response; 0 means 30s, negative disables. Under
	// the retry policy it bounds each *attempt*, not the whole call.
	RequestTimeout time.Duration
	// RetryPolicy governs transparent retries of failed requests. The
	// zero value is the documented default (retries ON: 4 attempts,
	// 25ms–1s exponential backoff with full jitter, 3s sleep budget);
	// set MaxAttempts to 1 (or negative) to disable retries.
	RetryPolicy RetryPolicy
	// Registry receives the client's metrics (attempts per opcode, retries
	// by cause, backoff sleep); nil means a fresh private registry,
	// readable via Telemetry().
	Registry *telemetry.Registry
	// DisableTrace turns off the trace-ID wire extension: requests are
	// sent untraced, byte-identical to a pre-trace client. Tracing is on
	// by default — it costs one uvarint field per frame and lets the
	// server's slow-op log name the exact client call that suffered.
	DisableTrace bool
	// Replicas lists read-only follower addresses. They do two jobs:
	// idempotent reads (Get, Join, Names, Explain*) fan out to caught-up
	// followers, and together with the dialed address they form the
	// *failover set* — when the primary is lost or fenced, the client
	// probes every candidate's HEALTH for the highest-epoch writable
	// server and re-pins writes there. Writes, transactions, Health and
	// Stats always go to the currently pinned primary. See
	// client/replicas.go and client/failover.go.
	Replicas []string
	// MaxReplicaLag is the staleness bound in log bytes: a replica whose
	// durable offset trails the primary's by more is left out of the read
	// rotation until it catches up. 0 means 1MiB; negative means
	// unlimited (read-your-writes pinning still applies).
	MaxReplicaLag int64
	// ReplicaProbe is the health-probe interval for replica rotation;
	// 0 means 1s.
	ReplicaProbe time.Duration
}

// RetryPolicy is exponential backoff with full jitter, capped by a total
// sleep budget. A request is retried when it failed in a way that cannot
// have half-happened or that is safe to repeat: dial errors, request
// deadlines, lost connections, and the server's CodeOverloaded
// load-shedding refusal (whose retry-after hint, when longer than the
// computed backoff, is honored instead). Reads are idempotent by nature;
// writes are made idempotent by the key the client stamps on them (the
// server deduplicates applied write ids), so both retry safely.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts per call, including
	// the first; 0 means 4, 1 or negative disables retries.
	MaxAttempts int
	// BaseDelay is the pre-jitter backoff before the first retry and
	// doubles per attempt; 0 means 25ms.
	BaseDelay time.Duration
	// MaxDelay caps the pre-jitter backoff; 0 means 1s.
	MaxDelay time.Duration
	// Budget caps the total time one call may spend sleeping between
	// attempts; a retry that would exceed it is not taken and the last
	// error returns. 0 means 3s, negative means unlimited.
	Budget time.Duration
}

func (p RetryPolicy) maxAttempts() int {
	if p.MaxAttempts == 0 {
		return 4
	}
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

func (p RetryPolicy) baseDelay() time.Duration {
	if p.BaseDelay <= 0 {
		return 25 * time.Millisecond
	}
	return p.BaseDelay
}

func (p RetryPolicy) maxDelay() time.Duration {
	if p.MaxDelay <= 0 {
		return time.Second
	}
	return p.MaxDelay
}

func (p RetryPolicy) budget() time.Duration {
	if p.Budget == 0 {
		return 3 * time.Second
	}
	if p.Budget < 0 {
		return time.Duration(1<<63 - 1)
	}
	return p.Budget
}

// backoff computes the sleep before attempt (1-based retry index): full
// jitter over min(BaseDelay<<(attempt-1), MaxDelay).
func (p RetryPolicy) backoff(attempt int) time.Duration {
	d := p.baseDelay()
	for i := 1; i < attempt && d < p.maxDelay(); i++ {
		d *= 2
	}
	if d > p.maxDelay() {
		d = p.maxDelay()
	}
	return time.Duration(rand.Int63n(int64(d) + 1))
}

func (o Options) poolSize() int {
	if o.PoolSize <= 0 {
		return 2
	}
	return o.PoolSize
}

func (o Options) maxFrame() int {
	if o.MaxFrame <= 0 {
		return wire.MaxFrame
	}
	return o.MaxFrame
}

func (o Options) dialTimeout() time.Duration {
	if o.DialTimeout <= 0 {
		return 5 * time.Second
	}
	return o.DialTimeout
}

func (o Options) requestTimeout() time.Duration {
	if o.RequestTimeout == 0 {
		return 30 * time.Second
	}
	if o.RequestTimeout < 0 {
		return 0
	}
	return o.RequestTimeout
}

func (o Options) maxReplicaLag() int64 {
	if o.MaxReplicaLag == 0 {
		return 1 << 20
	}
	if o.MaxReplicaLag < 0 {
		return -1 // unlimited
	}
	return o.MaxReplicaLag
}

func (o Options) replicaProbe() time.Duration {
	if o.ReplicaProbe <= 0 {
		return time.Second
	}
	return o.ReplicaProbe
}

// Packed mirrors core.Packed: a remote object with the witness type it was
// stored at.
type Packed = core.Packed

// Client is a pooled connection to one dbpl server. It is safe for
// concurrent use.
type Client struct {
	// addr is the current write target, guarded by mu: failover re-pins
	// it to a newly promoted primary. origin is the address Dial was
	// given, immutable, and always part of the failover candidate set.
	addr   string
	origin string
	o      Options

	// id is the client-unique prefix of idempotency keys; seq the
	// per-client write counter completing them.
	id  [8]byte
	seq atomic.Uint64

	// m counts attempts, retries and backoff; see telemetry.go.
	m *clientMetrics

	mu     sync.Mutex
	pool   []*conn // fixed slots, lazily (re)dialed
	closed bool
	next   atomic.Uint64 // round-robin over the pool

	// writes is the read-your-writes stamp (see noteWrite); reps the
	// replica read rotation, nil without Options.Replicas.
	writes atomic.Uint64
	reps   *replicaSet
}

// Dial connects to a dbpl server, verifying liveness with a Ping.
func Dial(addr string, opts *Options) (*Client, error) {
	var o Options
	if opts != nil {
		o = *opts
	}
	c := &Client{addr: addr, origin: addr, o: o, pool: make([]*conn, o.poolSize())}
	reg := o.Registry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	c.m = newClientMetrics(reg)
	if _, err := crand.Read(c.id[:]); err != nil {
		// A broken system entropy source: keys stay unique per process,
		// which is what the dedup window actually relies on.
		binary.BigEndian.PutUint64(c.id[:], uint64(time.Now().UnixNano()))
	}
	if err := c.Ping(); err != nil {
		c.Close()
		return nil, err
	}
	if len(o.Replicas) > 0 {
		c.reps = newReplicaSet(c, o.Replicas)
	}
	return c, nil
}

// nextKey stamps one write with a client-unique idempotency key: the
// 8-byte client id plus a monotone counter. The server remembers applied
// keys, so resending the same frame after a lost acknowledgement applies
// exactly once.
func (c *Client) nextKey() []byte {
	key := make([]byte, 16)
	copy(key, c.id[:])
	binary.BigEndian.PutUint64(key[8:], c.seq.Add(1))
	return key
}

// Close closes every pooled and replica connection. Sessions hold their
// own connections and must be finished separately.
func (c *Client) Close() error {
	if c.reps != nil {
		c.reps.close()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	for i, cn := range c.pool {
		if cn != nil {
			cn.fail(ErrClosed)
			c.pool[i] = nil
		}
	}
	return nil
}

// primary returns the current write target: the dialed address, or the
// server failover last re-pinned writes to.
func (c *Client) primary() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.addr
}

// getConn returns a live pooled connection, redialing a dead slot.
func (c *Client) getConn() (*conn, error) {
	slot := int(c.next.Add(1)-1) % len(c.pool)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	cn := c.pool[slot]
	if cn != nil && !cn.isDead() {
		c.mu.Unlock()
		return cn, nil
	}
	addr := c.addr
	c.mu.Unlock()
	// Dial outside the lock; racing callers may dial the same slot, the
	// loser's connection is closed.
	fresh, err := dialConn(addr, c.o)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		fresh.fail(ErrClosed)
		return nil, ErrClosed
	}
	if c.addr != addr {
		// Failover re-pinned the primary while we were dialing the old
		// one: pooling this connection would route writes to a fenced
		// server. Drop it and let the retry loop dial the new address.
		fresh.fail(ErrConnLost)
		return nil, fmt.Errorf("%w: primary re-pinned to %s during dial", ErrConnLost, c.addr)
	}
	if cur := c.pool[slot]; cur != nil && !cur.isDead() {
		fresh.fail(ErrClosed)
		return cur, nil
	}
	c.pool[slot] = fresh
	return fresh, nil
}

func (c *Client) roundTrip(op byte, fields ...[]byte) (byte, [][]byte, error) {
	cn, err := c.getConn()
	if err != nil {
		return 0, nil, err
	}
	return cn.roundTrip(c.o.requestTimeout(), op, fields...)
}

// call is roundTrip under the retry policy. OpError responses are decoded
// here (rather than in expect) so the loop can classify them; the request
// must be idempotent or carry an idempotency key.
func (c *Client) call(op byte, fields ...[]byte) (byte, [][]byte, error) {
	pol := c.o.RetryPolicy
	budget := pol.budget()
	var slept time.Duration
	var lastErr error
	for attempt := 1; ; attempt++ {
		c.m.attempt(op)
		respOp, respFields, err := c.roundTrip(op, fields...)
		if err == nil && respOp == wire.OpError {
			err = wire.DecodeError(respFields)
		}
		if err == nil {
			return respOp, respFields, nil
		}
		// Failover: the primary is gone (lost connection, dial failure) or
		// refuses writes by role (fenced, demoted). With a failover set
		// configured, find the highest-epoch writable server and replay
		// there; the frame — including its idempotency key — is reused
		// verbatim, so the replayed write applies exactly once even if the
		// original reached the old primary's log. The replay skips the
		// backoff (the new primary is fresh evidence, not a guess) but
		// still counts against MaxAttempts.
		if attempt < pol.maxAttempts() && c.failoverEligible(err) && c.failover() {
			continue
		}
		if !retryable(err) || attempt >= pol.maxAttempts() {
			return 0, nil, err
		}
		lastErr = err
		d := pol.backoff(attempt)
		if hint := retryAfterOf(lastErr); hint > d {
			d = hint
		}
		if slept+d > budget {
			return 0, nil, lastErr
		}
		c.m.retry(lastErr)
		c.m.backoff(d)
		time.Sleep(d)
		slept += d
	}
}

// retryable classifies failures that are safe to repeat: the request
// never executed (dial failure, overload shed), or executed at most once
// with the outcome unknown (deadline, lost connection) — which idempotent
// and key-stamped requests tolerate. Application errors (no-root, txn,
// I/O, degraded, ...) report a definite outcome and are never retried.
func retryable(err error) bool {
	if errors.Is(err, ErrClosed) || errors.Is(err, ErrDone) {
		return false
	}
	// A follower's or fenced server's write refusal is permanent and by
	// role — unlike CodeOverloaded it cannot clear with time, so retrying
	// against the same server only burns the backoff budget. The typed
	// refusal names the primary; surface it immediately. (With a failover
	// set configured, call() handles these before consulting retryable:
	// the retry then goes to a *different* server.)
	if errors.Is(err, ErrReadOnly) || errors.Is(err, ErrFenced) {
		return false
	}
	if errors.Is(err, ErrOverloaded) || errors.Is(err, ErrDeadline) || errors.Is(err, ErrConnLost) {
		return true
	}
	var ne net.Error // dial timeouts, refused connections, resets
	return errors.As(err, &ne)
}

// retryAfterOf extracts the server's backoff hint, 0 when absent.
func retryAfterOf(err error) time.Duration {
	var we *wire.WireError
	if errors.As(err, &we) {
		return we.RetryAfter
	}
	return 0
}

// ---------------------------------------------------------------------------
// Stateless operations
// ---------------------------------------------------------------------------

// Ping checks server liveness.
func (c *Client) Ping() error {
	_, _, err := expect(wire.OpOK)(c.call(wire.OpPing))
	return err
}

// Health asks the server for its self-report: degraded (poisoned) flag,
// in-flight requests, sessions, committed roots, uptime. It is answered
// even by an overloaded or poisoned server.
func (c *Client) Health() (Health, error) {
	_, fields, err := expect(wire.OpOK)(c.call(wire.OpHealth))
	if err != nil {
		return Health{}, err
	}
	return wire.DecodeHealth(fields)
}

// Get is the paper's generic extraction, remotely: every root whose
// declared type is a subtype of t, packaged with its witness. With
// Options.Replicas it may be served by a caught-up follower.
func (c *Client) Get(t types.Type) ([]Packed, error) {
	return decodeGet(c.readCall(wire.OpGet, mustTypeField(t)))
}

// GetExpr is Get over the concrete type syntax, e.g. "{Name: String}".
func (c *Client) GetExpr(src string) ([]Packed, error) {
	t, err := types.Parse(src)
	if err != nil {
		return nil, err
	}
	return c.Get(t)
}

// Put binds name to v at the declared type (nil means v's most specific
// type) and commits it as one group. The frame carries an idempotency
// key, so a retry after a lost acknowledgement applies exactly once.
func (c *Client) Put(name string, v value.Value, declared types.Type) error {
	f, err := putFields(name, v, declared)
	if err != nil {
		return err
	}
	f = append(f, c.nextKey())
	defer c.noteWrite()
	_, _, err = expect(wire.OpOK)(c.call(wire.OpPut, f...))
	return err
}

// Delete unbinds name, reporting whether it existed. Like Put it is
// key-stamped: a retried DELETE reports the existed bit of its first
// application, not of the retry.
func (c *Client) Delete(name string) (bool, error) {
	defer c.noteWrite()
	return decodeDelete(c.call(wire.OpDelete, []byte(name), c.nextKey()))
}

// Join computes the generalized natural join (the paper's Figure 1) of
// the extents at t1 and t2, remotely.
func (c *Client) Join(t1, t2 types.Type) ([]value.Value, error) {
	ps, err := decodeGet(c.readCall(wire.OpJoin, mustTypeField(t1), mustTypeField(t2)))
	if err != nil {
		return nil, err
	}
	out := make([]value.Value, len(ps))
	for i, p := range ps {
		out[i] = p.Value
	}
	return out, nil
}

// CreateIndex declares a field-value index on a record label, reporting
// whether it was newly created (false: it already existed). The
// definition is durable; the index itself is maintained in memory and
// rebuilt from the committed roots on every server start. Key-stamped
// like every write, so a retry applies exactly once.
func (c *Client) CreateIndex(field string) (bool, error) {
	defer c.noteWrite()
	return decodeBool(c.call(wire.OpCreateIndex, []byte(field), c.nextKey()))
}

// DropIndex removes a field-value index declaration, reporting whether it
// existed. Key-stamped.
func (c *Client) DropIndex(field string) (bool, error) {
	defer c.noteWrite()
	return decodeBool(c.call(wire.OpDropIndex, []byte(field), c.nextKey()))
}

// ExplainGet renders the access-path plan the server would choose right
// now for a GET at t — the cost breakdown over scan, extent and index —
// without executing anything.
func (c *Client) ExplainGet(t types.Type) (string, error) {
	return decodeText(c.readCall(wire.OpExplain, mustTypeField(t)))
}

// ExplainJoin renders the join plan (nested-loop or build/probe
// partition) for joining the extents at t1 and t2.
func (c *Client) ExplainJoin(t1, t2 types.Type) (string, error) {
	return decodeText(c.readCall(wire.OpExplain, mustTypeField(t1), mustTypeField(t2)))
}

// Promote orders the server to take over as primary: it stops following
// its upstream, bumps the promotion epoch durably, and starts accepting
// writes. The new epoch is returned. The server must have been started
// with -allow-promote; a staged or poisoned server refuses. Deliberately
// a single attempt with no retries — promotion is an admin action whose
// replay would bump the epoch again, so a lost acknowledgement is left
// to the operator (probe Health for the role and epoch, then decide).
func (c *Client) Promote() (uint64, error) {
	c.m.attempt(wire.OpPromote)
	op, fields, err := c.roundTrip(wire.OpPromote)
	if err == nil && op == wire.OpError {
		err = wire.DecodeError(fields)
	}
	if err != nil {
		return 0, err
	}
	if op != wire.OpOK || len(fields) != 1 {
		return 0, &wire.WireError{Code: wire.CodeBadFrame, Msg: "malformed PROMOTE response"}
	}
	epoch, n := binary.Uvarint(fields[0])
	if n <= 0 {
		return 0, &wire.WireError{Code: wire.CodeBadFrame, Msg: "malformed PROMOTE epoch"}
	}
	return epoch, nil
}

// Names lists the root names.
func (c *Client) Names() ([]string, error) {
	_, fields, err := expect(wire.OpOK)(c.readCall(wire.OpNames))
	if err != nil {
		return nil, err
	}
	out := make([]string, len(fields))
	for i, f := range fields {
		out[i] = string(f)
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Sessions (server-side transactions)
// ---------------------------------------------------------------------------

// Session is one server-side transaction, pinned to its own connection.
// Finish it with Commit or Abort (Close aborts if neither happened).
type Session struct {
	c    *Client
	cn   *conn
	done bool
}

// Begin opens a transaction on a dedicated connection. Nothing has been
// buffered yet, so the whole dial+BEGIN is retried under the policy.
func (c *Client) Begin() (*Session, error) {
	pol := c.o.RetryPolicy
	budget := pol.budget()
	var slept time.Duration
	for attempt := 1; ; attempt++ {
		c.m.attempt(wire.OpBegin)
		s, err := c.begin()
		if err == nil {
			return s, nil
		}
		// Sessions fail over like stateless calls: nothing is buffered
		// before BEGIN succeeds, so redialing the new primary is free.
		if attempt < pol.maxAttempts() && c.failoverEligible(err) && c.failover() {
			continue
		}
		if !retryable(err) || attempt >= pol.maxAttempts() {
			return nil, err
		}
		d := pol.backoff(attempt)
		if hint := retryAfterOf(err); hint > d {
			d = hint
		}
		if slept+d > budget {
			return nil, err
		}
		c.m.retry(err)
		c.m.backoff(d)
		time.Sleep(d)
		slept += d
	}
}

func (c *Client) begin() (*Session, error) {
	cn, err := dialConn(c.primary(), c.o)
	if err != nil {
		return nil, err
	}
	op, fields, err := cn.roundTrip(c.o.requestTimeout(), wire.OpBegin)
	if err == nil && op == wire.OpError {
		err = wire.DecodeError(fields)
	}
	if err == nil && op != wire.OpOK {
		err = &wire.WireError{Code: wire.CodeBadFrame,
			Msg: fmt.Sprintf("unexpected response opcode %#x", op)}
	}
	if err != nil {
		cn.fail(ErrClosed)
		return nil, err
	}
	return &Session{c: c, cn: cn}, nil
}

func (s *Session) roundTrip(op byte, fields ...[]byte) (byte, [][]byte, error) {
	if s.done {
		return 0, nil, ErrDone
	}
	return s.cn.roundTrip(s.c.o.requestTimeout(), op, fields...)
}

// Get inside the session sees its own buffered writes overlaid on the
// snapshot pinned at Begin.
func (s *Session) Get(t types.Type) ([]Packed, error) {
	return decodeGet(s.roundTrip(wire.OpGet, mustTypeField(t)))
}

// Put buffers a binding in the transaction.
func (s *Session) Put(name string, v value.Value, declared types.Type) error {
	f, err := putFields(name, v, declared)
	if err != nil {
		return err
	}
	_, _, err = expect(wire.OpOK)(s.roundTrip(wire.OpPut, f...))
	return err
}

// Delete buffers an unbinding, reporting whether the name was bound in
// the session's view.
func (s *Session) Delete(name string) (bool, error) {
	return decodeDelete(s.roundTrip(wire.OpDelete, []byte(name)))
}

// Join runs the generalized join against the session's view.
func (s *Session) Join(t1, t2 types.Type) ([]value.Value, error) {
	ps, err := decodeGet(s.roundTrip(wire.OpJoin, mustTypeField(t1), mustTypeField(t2)))
	if err != nil {
		return nil, err
	}
	out := make([]value.Value, len(ps))
	for i, p := range ps {
		out[i] = p.Value
	}
	return out, nil
}

// Names lists the root names in the session's view.
func (s *Session) Names() ([]string, error) {
	_, fields, err := expect(wire.OpOK)(s.roundTrip(wire.OpNames))
	if err != nil {
		return nil, err
	}
	out := make([]string, len(fields))
	for i, f := range fields {
		out[i] = string(f)
	}
	return out, nil
}

// Commit makes the buffered writes one durable commit group and ends the
// session. The COMMIT frame is key-stamped and retried on overload sheds
// (the session connection is still alive then, so the buffered writes
// are too); a lost connection is not retryable — the server discards the
// transaction with the session, so there is nothing left to commit.
func (s *Session) Commit() error {
	if s.done {
		return ErrDone
	}
	defer s.c.noteWrite()
	key := s.c.nextKey()
	pol := s.c.o.RetryPolicy
	budget := pol.budget()
	var slept time.Duration
	var err error
	for attempt := 1; ; attempt++ {
		s.c.m.attempt(wire.OpCommit)
		_, _, err = expect(wire.OpOK)(s.roundTrip(wire.OpCommit, key))
		if err == nil || !errors.Is(err, ErrOverloaded) || attempt >= pol.maxAttempts() {
			break
		}
		d := pol.backoff(attempt)
		if hint := retryAfterOf(err); hint > d {
			d = hint
		}
		if slept+d > budget {
			break
		}
		s.c.m.retry(err)
		s.c.m.backoff(d)
		time.Sleep(d)
		slept += d
	}
	s.finish()
	return err
}

// Abort discards the buffered writes and ends the session.
func (s *Session) Abort() error {
	_, _, err := expect(wire.OpOK)(s.roundTrip(wire.OpAbort))
	s.finish()
	return err
}

// Close aborts the session if it is still open.
func (s *Session) Close() error {
	if s.done {
		return nil
	}
	return s.Abort()
}

func (s *Session) finish() {
	if !s.done {
		s.done = true
		s.cn.fail(ErrDone)
	}
}

// ---------------------------------------------------------------------------
// Request/response plumbing
// ---------------------------------------------------------------------------

func mustTypeField(t types.Type) []byte {
	b, err := wire.MarshalType(t)
	if err != nil {
		// Every types.Type the package can produce is encodable; an
		// unencodable one is a programming error surfaced loudly.
		panic(fmt.Sprintf("client: unencodable type %s: %v", t, err))
	}
	return b
}

func putFields(name string, v value.Value, declared types.Type) ([][]byte, error) {
	img, err := codec.MarshalTagged(v, declared)
	if err != nil {
		return nil, err
	}
	return [][]byte{[]byte(name), img}, nil
}

// expect checks the response opcode, decoding OpError frames into their
// *wire.WireError.
func expect(want byte) func(byte, [][]byte, error) (byte, [][]byte, error) {
	return func(op byte, fields [][]byte, err error) (byte, [][]byte, error) {
		if err != nil {
			return op, fields, err
		}
		if op == wire.OpError {
			return op, nil, wire.DecodeError(fields)
		}
		if op != want {
			return op, nil, &wire.WireError{Code: wire.CodeBadFrame,
				Msg: fmt.Sprintf("unexpected response opcode %#x", op)}
		}
		return op, fields, nil
	}
}

func decodeGet(op byte, fields [][]byte, err error) ([]Packed, error) {
	if _, fields, err = expect(wire.OpValues)(op, fields, err); err != nil {
		return nil, err
	}
	out := make([]Packed, len(fields))
	for i, f := range fields {
		v, t, err := codec.UnmarshalTagged(f)
		if err != nil {
			return nil, err
		}
		out[i] = Packed{Value: v, Witness: t}
	}
	return out, nil
}

func decodeDelete(op byte, fields [][]byte, err error) (bool, error) {
	if _, fields, err = expect(wire.OpOK)(op, fields, err); err != nil {
		return false, err
	}
	if len(fields) != 1 || len(fields[0]) != 1 {
		return false, &wire.WireError{Code: wire.CodeBadFrame, Msg: "malformed DELETE response"}
	}
	return fields[0][0] == 1, nil
}

// decodeBool decodes an OK response carrying one boolean field (the
// created/existed bit of the index opcodes).
func decodeBool(op byte, fields [][]byte, err error) (bool, error) {
	if _, fields, err = expect(wire.OpOK)(op, fields, err); err != nil {
		return false, err
	}
	if len(fields) != 1 || len(fields[0]) != 1 {
		return false, &wire.WireError{Code: wire.CodeBadFrame, Msg: "malformed boolean response"}
	}
	return fields[0][0] == 1, nil
}

// decodeText decodes an OK response carrying one text field (EXPLAIN).
func decodeText(op byte, fields [][]byte, err error) (string, error) {
	if _, fields, err = expect(wire.OpOK)(op, fields, err); err != nil {
		return "", err
	}
	if len(fields) != 1 {
		return "", &wire.WireError{Code: wire.CodeBadFrame, Msg: "malformed EXPLAIN response"}
	}
	return string(fields[0]), nil
}

// ---------------------------------------------------------------------------
// conn: one pipelining connection
// ---------------------------------------------------------------------------

type result struct {
	op     byte
	fields [][]byte
	err    error
}

// pendingSlot is one in-flight request awaiting its FIFO-matched
// response, and the trace ID it was stamped with so the reader can verify
// the server's echo.
type pendingSlot struct {
	ch     chan result
	trace  uint64
	traced bool
}

// conn is a single connection with FIFO request pipelining: writers append
// a response slot and write their frame under wmu (so slot order equals
// frame order), and the reader goroutine delivers responses to slots in
// order.
type conn struct {
	nc       net.Conn
	maxFrame int
	noTrace  bool

	wmu  sync.Mutex // serializes {enqueue, encode, write}
	wbuf []byte     // reused frame-encode buffer, guarded by wmu

	mu      sync.Mutex
	pending []pendingSlot
	dead    error // sticky; set once by fail
}

// maxRetainedWriteBuf caps the encode buffer kept across requests: one
// oversized PUT must not pin its payload's worth of memory on the
// connection forever.
const maxRetainedWriteBuf = 64 << 10

func dialConn(addr string, o Options) (*conn, error) {
	nc, err := net.DialTimeout("tcp", addr, o.dialTimeout())
	if err != nil {
		return nil, err
	}
	c := &conn{nc: nc, maxFrame: o.maxFrame(), noTrace: o.DisableTrace}
	go c.readLoop()
	return c, nil
}

func (c *conn) isDead() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dead != nil
}

// fail marks the connection dead, closes it, and delivers err to every
// in-flight request. Idempotent.
func (c *conn) fail(err error) {
	c.mu.Lock()
	if c.dead != nil {
		c.mu.Unlock()
		return
	}
	c.dead = err
	ps := c.pending
	c.pending = nil
	c.mu.Unlock()
	c.nc.Close()
	for _, slot := range ps {
		slot.ch <- result{err: err}
	}
}

func (c *conn) readLoop() {
	r := bufio.NewReader(c.nc)
	for {
		rawOp, rawFields, err := wire.ReadFrame(r, c.maxFrame)
		if err != nil {
			c.fail(fmt.Errorf("%w: %w", ErrConnLost, err))
			return
		}
		c.mu.Lock()
		if len(c.pending) == 0 {
			c.mu.Unlock()
			c.fail(&wire.WireError{Code: wire.CodeBadFrame, Msg: "unsolicited response"})
			return
		}
		slot := c.pending[0]
		c.pending = c.pending[1:]
		c.mu.Unlock()
		// Strip the server's trace echo. An untraced response to a traced
		// request is tolerated (a pre-trace server answers old-style); a
		// response carrying a different trace than the head-of-line request
		// means FIFO matching has desynchronized, and every answer on this
		// connection is suspect — kill it. Both failure modes wrap
		// ErrConnLost, so idempotent and key-stamped requests retry.
		op, trace, fields, traced, terr := wire.SplitTrace(rawOp, rawFields)
		if terr != nil {
			werr := fmt.Errorf("%w: %w", ErrConnLost, terr)
			c.fail(werr)
			slot.ch <- result{err: werr}
			return
		}
		if slot.traced && traced && trace != slot.trace {
			werr := fmt.Errorf("%w: trace mismatch: response carries %#x, request sent %#x",
				ErrConnLost, trace, slot.trace)
			c.fail(werr)
			slot.ch <- result{err: werr}
			return
		}
		slot.ch <- result{op: op, fields: fields}
	}
}

// roundTrip writes one request and waits for its response. Concurrent
// callers pipeline: their frames are written back to back and answered in
// order. timeout covers the whole round trip; on expiry the connection is
// killed (responses can no longer be matched) and redialed by the pool on
// next use.
func (c *conn) roundTrip(timeout time.Duration, op byte, fields ...[]byte) (byte, [][]byte, error) {
	ch := make(chan result, 1)
	slot := pendingSlot{ch: ch}
	if !c.noTrace {
		slot.trace = nextTrace()
		slot.traced = true
	}
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	c.wmu.Lock()
	c.mu.Lock()
	if c.dead != nil {
		err := c.dead
		c.mu.Unlock()
		c.wmu.Unlock()
		return 0, nil, err
	}
	c.pending = append(c.pending, slot)
	c.mu.Unlock()
	c.nc.SetWriteDeadline(deadline)
	// Encode into the connection's reused buffer and write in one syscall.
	// Trace stamping this way costs zero allocations (E15 addendum in
	// EXPERIMENTS.md): AppendTracedFrame splices the trace field into the
	// frame in place, where the old AppendTrace-then-WriteFrame pair built
	// a fresh field slice and a fresh frame buffer per request.
	var buf []byte
	var err error
	if slot.traced {
		buf, err = wire.AppendTracedFrame(c.wbuf[:0], c.maxFrame, op, slot.trace, fields...)
	} else {
		buf, err = wire.AppendFrame(c.wbuf[:0], c.maxFrame, op, fields...)
	}
	if err == nil {
		c.wbuf = buf
		if cap(c.wbuf) > maxRetainedWriteBuf {
			c.wbuf = nil
		}
		_, err = c.nc.Write(buf)
	}
	c.wmu.Unlock()
	if err != nil {
		c.fail(fmt.Errorf("%w: write failed: %w", ErrConnLost, err))
		r := <-ch // fail delivered to every pending slot, including ours
		if r.err == nil {
			// The response won the race with fail's delivery: the frame
			// reached the server despite the reported write error, and the
			// reader matched its answer to our slot before fail drained it.
			return r.op, r.fields, nil
		}
		return 0, nil, r.err
	}
	if timeout <= 0 {
		r := <-ch
		return r.op, r.fields, r.err
	}
	timer := time.NewTimer(time.Until(deadline))
	defer timer.Stop()
	select {
	case r := <-ch:
		return r.op, r.fields, r.err
	case <-timer.C:
		c.fail(ErrDeadline)
		r := <-ch
		if r.err == nil {
			// The response won the race with fail's delivery.
			return r.op, r.fields, nil
		}
		return 0, nil, r.err
	}
}
