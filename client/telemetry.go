package client

import (
	crand "crypto/rand"
	"encoding/binary"
	"errors"
	"sync/atomic"
	"time"

	"dbpl/internal/server/wire"
	"dbpl/internal/telemetry"
	"dbpl/internal/telemetry/trace"
)

// ---------------------------------------------------------------------------
// Trace IDs
// ---------------------------------------------------------------------------

// traceSeq is the process-global trace-ID sequence, seeded once from the
// system entropy source so IDs from different processes don't collide on
// a shared server's slow-op log.
var traceSeq atomic.Uint64

func init() {
	var b [8]byte
	if _, err := crand.Read(b[:]); err == nil {
		traceSeq.Store(binary.BigEndian.Uint64(b[:]))
	} else {
		traceSeq.Store(uint64(time.Now().UnixNano()))
	}
}

// nextTrace returns a fresh nonzero trace ID: a splitmix64 finalizer over
// a crypto-seeded counter — allocation-free, well distributed, unique per
// process for 2^64 calls. Zero is skipped because the wire encoding uses
// it for "untraced".
func nextTrace() uint64 {
	for {
		z := traceSeq.Add(0x9e3779b97f4a7c15)
		z ^= z >> 30
		z *= 0xbf58476d1ce4e5b9
		z ^= z >> 27
		z *= 0x94d049bb133111eb
		z ^= z >> 31
		if z != 0 {
			return z
		}
	}
}

// ---------------------------------------------------------------------------
// Client-side metrics
// ---------------------------------------------------------------------------

// clientMetrics counts what the retry machinery actually did: attempts
// per opcode (so attempts minus calls is the retry amplification),
// retries by cause, and total backoff sleep. Like the server's set,
// counters are pre-resolved into an opcode-indexed array so the request
// path never touches the registry's maps.
type clientMetrics struct {
	reg *telemetry.Registry

	attempts      [int(wire.OpStats) + 1]*telemetry.Counter
	attemptsOther *telemetry.Counter

	retryOverloaded *telemetry.Counter
	retryDeadline   *telemetry.Counter
	retryConnLost   *telemetry.Counter
	retryNet        *telemetry.Counter

	backoffNS *telemetry.Counter

	// Replica fan-out: reads attempted against a follower, and replica
	// failures that fell back to the primary.
	replicaReads     *telemetry.Counter
	replicaFallbacks *telemetry.Counter

	// failovers counts write re-pins to a different primary (probing that
	// merely re-confirmed the current pin is not counted).
	failovers *telemetry.Counter
}

func newClientMetrics(reg *telemetry.Registry) *clientMetrics {
	m := &clientMetrics{reg: reg}
	for _, op := range []byte{
		wire.OpPing, wire.OpGet, wire.OpPut, wire.OpDelete, wire.OpJoin,
		wire.OpBegin, wire.OpCommit, wire.OpAbort, wire.OpNames,
		wire.OpHealth, wire.OpStats,
	} {
		m.attempts[op] = reg.Counter(`dbpl_client_attempts_total{op="` + wire.OpName(op) + `"}`)
	}
	m.attemptsOther = reg.Counter(`dbpl_client_attempts_total{op="other"}`)
	m.retryOverloaded = reg.Counter(`dbpl_client_retries_total{cause="overloaded"}`)
	m.retryDeadline = reg.Counter(`dbpl_client_retries_total{cause="deadline"}`)
	m.retryConnLost = reg.Counter(`dbpl_client_retries_total{cause="conn_lost"}`)
	m.retryNet = reg.Counter(`dbpl_client_retries_total{cause="net"}`)
	m.backoffNS = reg.Counter("dbpl_client_backoff_ns_total")
	m.replicaReads = reg.Counter("dbpl_client_replica_reads_total")
	m.replicaFallbacks = reg.Counter("dbpl_client_replica_fallbacks_total")
	m.failovers = reg.Counter("dbpl_client_failovers_total")
	return m
}

func (m *clientMetrics) attempt(op byte) {
	if int(op) < len(m.attempts) && m.attempts[op] != nil {
		m.attempts[op].Inc()
		return
	}
	m.attemptsOther.Inc()
}

// retry records one retry actually taken, classified by what failed.
func (m *clientMetrics) retry(err error) {
	switch {
	case errors.Is(err, ErrOverloaded):
		m.retryOverloaded.Inc()
	case errors.Is(err, ErrDeadline):
		m.retryDeadline.Inc()
	case errors.Is(err, ErrConnLost):
		m.retryConnLost.Inc()
	default:
		m.retryNet.Inc()
	}
}

func (m *clientMetrics) backoff(d time.Duration) { m.backoffNS.Add(uint64(d)) }

// Telemetry returns the client's metrics registry: attempt counts per
// opcode, retries by cause, and cumulative backoff sleep.
func (c *Client) Telemetry() *telemetry.Registry { return c.m.reg }

// Stats asks the server for its full telemetry snapshot (the STATS
// opcode): every counter, gauge and histogram the server and its
// persistence layer maintain. Answered even by an overloaded, draining or
// poisoned server.
func (c *Client) Stats() (*telemetry.Snapshot, error) {
	_, fields, err := expect(wire.OpOK)(c.call(wire.OpStats))
	if err != nil {
		return nil, err
	}
	if len(fields) != 1 {
		return nil, &wire.WireError{Code: wire.CodeBadFrame, Msg: "malformed STATS response"}
	}
	return telemetry.UnmarshalSnapshot(fields[0])
}

// Trace is one retained server-side span tree, as returned by Traces.
type Trace = trace.Data

// Traces asks the server for its retained request traces (the TRACES
// opcode), newest first. A server running with sampling disabled answers
// an empty slice, not an error.
func (c *Client) Traces() ([]Trace, error) {
	_, fields, err := expect(wire.OpOK)(c.call(wire.OpTraces))
	if err != nil {
		return nil, err
	}
	out := make([]Trace, 0, len(fields))
	for _, f := range fields {
		d, err := trace.Decode(f)
		if err != nil {
			return nil, &wire.WireError{Code: wire.CodeBadFrame,
				Msg: "malformed TRACES response: " + err.Error()}
		}
		out = append(out, d)
	}
	return out, nil
}
