// Read fan-out across replication followers.
//
// A Client given Options.Replicas spreads idempotent reads (Get, Join,
// Names, Explain*) round-robin over the followers and keeps writes on the
// primary. Two safety rules make this transparent:
//
//   - Staleness bound: a background prober polls HEALTH on the primary
//     and every replica (both report their durable log offset), and a
//     replica lagging more than Options.MaxReplicaLag bytes behind the
//     primary is taken out of rotation until it catches up.
//
//   - Read-your-writes pinning: the client stamps every write with a
//     monotone counter, and a replica is only eligible once a probe has
//     proven it caught up to the primary's durable end *after* the last
//     write was acknowledged. Between a write and that proof, reads pin
//     to the primary, so a session can never fail to see its own writes.
//
// Any replica failure falls back to the primary under the normal retry
// policy — fan-out can only add capacity, never subtract availability.
package client

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"dbpl/internal/server/wire"
)

// replica is one follower: its lazily-dialed connection and the prober's
// verdict on it.
type replica struct {
	addr string
	// healthy is the last probe's verdict: reachable, not poisoned, and
	// within the staleness bound. A failed read also clears it.
	healthy atomic.Bool
	// synced is the client write-stamp up to which this replica has been
	// proven caught up; a replica is only read from while synced covers
	// every acknowledged write (read-your-writes).
	synced atomic.Uint64
	// role and epoch are the last probe's self-report. A change in either
	// invalidates every cached verdict: the old proofs described a
	// different regime. Without this a demoted primary would keep serving
	// fan-out reads on its stale pre-fence proof, and a promoted follower
	// would never be re-proven in its new role.
	role  atomic.Int32
	epoch atomic.Uint64

	mu sync.Mutex
	cn *conn
}

func (rep *replica) getConn(o Options) (*conn, error) {
	rep.mu.Lock()
	defer rep.mu.Unlock()
	if rep.cn != nil && !rep.cn.isDead() {
		return rep.cn, nil
	}
	cn, err := dialConn(rep.addr, o)
	if err != nil {
		return nil, err
	}
	rep.cn = cn
	return cn, nil
}

func (rep *replica) closeConn() {
	rep.mu.Lock()
	defer rep.mu.Unlock()
	if rep.cn != nil {
		rep.cn.fail(ErrClosed)
		rep.cn = nil
	}
}

// roundTrip is one single-attempt request against this replica; the
// caller handles failure by falling back to the primary.
func (rep *replica) roundTrip(c *Client, op byte, fields ...[]byte) (byte, [][]byte, error) {
	cn, err := rep.getConn(c.o)
	if err != nil {
		return 0, nil, err
	}
	return cn.roundTrip(c.o.requestTimeout(), op, fields...)
}

func (rep *replica) health(c *Client) (Health, error) {
	op, fields, err := rep.roundTrip(c, wire.OpHealth)
	if err == nil && op == wire.OpError {
		err = wire.DecodeError(fields)
	}
	if err != nil {
		return Health{}, err
	}
	return wire.DecodeHealth(fields)
}

// replicaSet is the rotation and its prober.
type replicaSet struct {
	c    *Client
	reps []*replica
	next atomic.Uint64
	stop chan struct{}
	done chan struct{}
}

func newReplicaSet(c *Client, addrs []string) *replicaSet {
	rs := &replicaSet{c: c, stop: make(chan struct{}), done: make(chan struct{})}
	for _, a := range addrs {
		rs.reps = append(rs.reps, &replica{addr: a})
	}
	go rs.probeLoop()
	return rs
}

func (rs *replicaSet) close() {
	close(rs.stop)
	<-rs.done
	for _, rep := range rs.reps {
		rep.closeConn()
	}
}

// pick returns the next eligible replica in round-robin order, nil when
// none is (reads then go to the primary).
func (rs *replicaSet) pick() *replica {
	min := rs.c.writes.Load()
	start := int(rs.next.Add(1) - 1)
	for i := 0; i < len(rs.reps); i++ {
		rep := rs.reps[(start+i)%len(rs.reps)]
		if rep.healthy.Load() && rep.synced.Load() >= min {
			return rep
		}
	}
	return nil
}

func (rs *replicaSet) probeLoop() {
	defer close(rs.done)
	rs.probe()
	t := time.NewTicker(rs.c.o.replicaProbe())
	defer t.Stop()
	for {
		select {
		case <-rs.stop:
			return
		case <-t.C:
			rs.probe()
		}
	}
}

// probe refreshes every replica's verdict from one HEALTH round each.
// Ordering carries the read-your-writes proof: the write stamp is read
// first, then the primary's durable end — which therefore covers every
// write acknowledged before the stamp — so a replica at or past that end
// has all of them, and its synced stamp may advance to s0.
func (rs *replicaSet) probe() {
	c := rs.c
	s0 := c.writes.Load()
	ph, perr := c.healthOnce()
	bound := c.o.maxReplicaLag()
	for _, rep := range rs.reps {
		h, err := rep.health(c)
		if err != nil || h.Poisoned {
			rep.healthy.Store(false)
			continue
		}
		if wire.Role(rep.role.Load()) != h.Role || rep.epoch.Load() != h.Epoch {
			// The server changed role or observed a promotion since the
			// last probe: every cached verdict about it is void. Reset the
			// read-your-writes proof; this probe round re-derives it
			// against the current primary under the new regime.
			rep.role.Store(int32(h.Role))
			rep.epoch.Store(h.Epoch)
			rep.synced.Store(0)
		}
		if h.Role == wire.RoleFenced {
			// A fenced ex-primary follows nobody: its data is frozen at
			// the moment it was demoted and can only grow staler. Unlike a
			// lagging follower it will never re-qualify on its own, so it
			// leaves the rotation until an operator rejoins it.
			rep.healthy.Store(false)
			continue
		}
		if perr == nil {
			if bound >= 0 && ph.DurableEnd-h.DurableEnd > bound {
				rep.healthy.Store(false)
				continue
			}
			if h.DurableEnd >= ph.DurableEnd {
				rep.synced.Store(s0)
			}
		}
		// With the primary unreachable no catch-up proof is possible: the
		// replica stays in rotation for reads already covered by its last
		// proof, preserving availability without weakening pinning.
		rep.healthy.Store(true)
	}
}

// healthOnce is a single-attempt HEALTH against the primary (the retrying
// Health() would stall the prober for seconds while the primary is down).
func (c *Client) healthOnce() (Health, error) {
	op, fields, err := c.roundTrip(wire.OpHealth)
	if err == nil && op == wire.OpError {
		err = wire.DecodeError(fields)
	}
	if err != nil {
		return Health{}, err
	}
	return wire.DecodeHealth(fields)
}

// noteWrite bumps the write stamp, pinning reads to the primary until a
// probe proves the replicas caught up. Called on every write *attempt*,
// successful or not: a deadline or lost connection leaves the outcome
// unknown, and pinning must cover the write that might have applied.
func (c *Client) noteWrite() { c.writes.Add(1) }

// readCall routes one idempotent read: a single attempt against an
// eligible replica first, the primary (under the full retry policy) when
// none is eligible or the replica attempt failed. A definite application
// error from the replica returns as-is — the primary would say the same.
func (c *Client) readCall(op byte, fields ...[]byte) (byte, [][]byte, error) {
	if c.reps != nil {
		if rep := c.reps.pick(); rep != nil {
			c.m.attempt(op)
			c.m.replicaReads.Inc()
			respOp, respFields, err := rep.roundTrip(c, op, fields...)
			if err == nil && respOp == wire.OpError {
				err = wire.DecodeError(respFields)
			}
			if err == nil {
				return respOp, respFields, nil
			}
			// Role-change refusals (ErrReadOnly, ErrFenced) invalidate the
			// cached verdict and fall back — this server is not what the
			// probe thought it was, but the primary can still answer the
			// read. Other definite application errors return as-is: the
			// primary would say the same.
			if !retryable(err) && !errors.Is(err, ErrShutdown) &&
				!errors.Is(err, ErrReadOnly) && !errors.Is(err, ErrFenced) {
				return 0, nil, err
			}
			rep.healthy.Store(false)
			rep.synced.Store(0)
			c.m.replicaFallbacks.Inc()
		}
	}
	return c.call(op, fields...)
}
