package client

import (
	"errors"
	"fmt"
	"net"
	"reflect"
	"testing"
	"time"
)

// TestFailoverEligibleClassification pins down which failures may trigger
// a probe of the failover set: transport loss and role-based refusals
// only, and only when a failover set exists at all. Definite application
// errors must never re-route — they would reproduce on any server.
func TestFailoverEligibleClassification(t *testing.T) {
	eligible := []error{
		ErrFenced,
		ErrReadOnly,
		ErrConnLost,
		ErrDeadline,
		fmt.Errorf("wrapped: %w", ErrFenced),
		&net.OpError{Op: "dial", Err: errors.New("connection refused")},
	}
	ineligible := []error{
		ErrNoRoot,
		ErrTxn,
		ErrRemoteCorrupt,
		ErrDegraded,
		ErrBadRequest,
		errors.New("some application error"),
	}

	with := &Client{o: Options{Replicas: []string{"replica:1"}}}
	for _, err := range eligible {
		if !with.failoverEligible(err) {
			t.Errorf("failoverEligible(%v) = false with a failover set, want true", err)
		}
	}
	for _, err := range ineligible {
		if with.failoverEligible(err) {
			t.Errorf("failoverEligible(%v) = true, want false (application error)", err)
		}
	}
	// No failover set: nothing is eligible, not even a lost connection —
	// there is nowhere to go.
	without := &Client{o: Options{}}
	for _, err := range eligible {
		if without.failoverEligible(err) {
			t.Errorf("failoverEligible(%v) = true without a failover set, want false", err)
		}
	}
}

// TestFailoverCandidates: the probe order is the original dialed address
// first, then the replicas, with the origin deduplicated — re-pinning
// must never make the candidate set drift from what the caller
// configured.
func TestFailoverCandidates(t *testing.T) {
	c := &Client{
		origin: "primary:1",
		o:      Options{Replicas: []string{"rep:1", "primary:1", "rep:2"}},
	}
	want := []string{"primary:1", "rep:1", "rep:2"}
	if got := c.candidates(); !reflect.DeepEqual(got, want) {
		t.Fatalf("candidates() = %v, want %v", got, want)
	}
	// The candidate set is anchored to the Dial address, not the current
	// pin: after a failover to rep:1 the old origin is still probed (it
	// may recover and be re-promoted later).
	c.addr = "rep:1"
	if got := c.candidates(); !reflect.DeepEqual(got, want) {
		t.Fatalf("candidates() after re-pin = %v, want %v", got, want)
	}
}

// TestCapDur: probe timeouts are bounded — a blackholed candidate costs
// the cap, not the caller's full request timeout, and "no deadline"
// becomes the cap rather than forever.
func TestCapDur(t *testing.T) {
	const cap = 2 * time.Second
	cases := []struct {
		in, want time.Duration
	}{
		{0, cap},                   // no deadline -> cap
		{-1, cap},                  // disabled -> cap
		{time.Second, time.Second}, // under the cap passes through
		{time.Minute, cap},         // over the cap is clamped
	}
	for _, tc := range cases {
		if got := capDur(tc.in, cap); got != tc.want {
			t.Errorf("capDur(%v, %v) = %v, want %v", tc.in, cap, got, tc.want)
		}
	}
}
