// Client-driven write failover.
//
// Options.Replicas is not only the read fan-out rotation: together with
// the address Dial was given it forms the *failover set*. When the
// pinned primary fails in a way failover can fix — the connection is
// lost, the dial fails, or the server refuses writes by role (fenced
// after a promotion elsewhere, or an ordinary follower) — the client
// probes every candidate's HEALTH and re-pins writes to the server that
// reports itself a writable primary at the highest promotion epoch.
//
// The epoch is what makes this safe during a partition: both the old and
// the new primary may answer the probe, but the promotion bumped the
// epoch durably, so the comparison always prefers the successor. The old
// primary either already knows it is fenced (and reports RoleFenced) or
// still calls itself primary at the *lower* epoch and loses the
// comparison.
//
// Exactly-once across failover: the in-flight write frame is replayed on
// the new primary byte-identical, idempotency key included. If the
// original write reached the old primary's log and was replicated before
// the crash, the new primary's dedup window recognizes the key and
// reports the first application's result instead of applying twice; if
// it never made it, the replay is the first application. Either way the
// caller observes one write. (The one honest gap is Durability=async on
// the old primary: a write acked there but never shipped is simply lost
// with the old primary's unsynced tail — see docs/REPLICATION.md.)
package client

import (
	"errors"
	"net"
	"time"

	"dbpl/internal/server/wire"
)

// failoverEligible reports whether err is the kind of failure a change
// of primary can fix: transport loss (the server may be dead) or a
// role-based write refusal (the server is alive but demoted). Definite
// application errors — no-root, txn, corrupt, degraded — would reproduce
// on any server and never trigger failover.
func (c *Client) failoverEligible(err error) bool {
	if len(c.o.Replicas) == 0 {
		return false
	}
	if errors.Is(err, ErrFenced) || errors.Is(err, ErrReadOnly) ||
		errors.Is(err, ErrConnLost) || errors.Is(err, ErrDeadline) {
		return true
	}
	var ne net.Error // dial timeouts, refused connections, resets
	return errors.As(err, &ne)
}

// failover probes the candidate set and re-pins writes to the best
// writable primary. It returns true when a writable primary was found —
// whether or not the pin changed: finding the *current* address writable
// means the primary recovered (or the pool merely held stale
// connections), and the caller should replay against a fresh connection
// either way. Returns false when no candidate is currently writable; the
// caller falls back to the ordinary retry policy.
func (c *Client) failover() bool {
	cur := c.primary()
	var best string
	var bestEpoch uint64
	found := false
	for _, addr := range c.candidates() {
		h, err := c.probeAddr(addr)
		if err != nil || h.Poisoned || h.ReadOnly || h.Role != wire.RolePrimary {
			continue
		}
		if !found || h.Epoch > bestEpoch {
			found, best, bestEpoch = true, addr, h.Epoch
		}
	}
	if !found {
		return false
	}
	if best != cur {
		c.m.failovers.Inc()
	}
	c.repin(best)
	return true
}

// candidates is the failover probe order: the original dialed address
// first, then every configured replica. The *current* pin is probed too
// (it is one of these), so a recovered primary wins ties at equal epoch
// only if it sorts first — and a promoted follower always wins outright,
// because promotion bumped its epoch.
func (c *Client) candidates() []string {
	out := make([]string, 0, 1+len(c.o.Replicas))
	out = append(out, c.origin)
	for _, a := range c.o.Replicas {
		if a != c.origin {
			out = append(out, a)
		}
	}
	return out
}

// probeAddr is one HEALTH round against addr on a dedicated connection,
// under tight timeouts: failover is latency-critical and a blackholed
// candidate must cost ~2s, not the full request timeout.
func (c *Client) probeAddr(addr string) (Health, error) {
	po := c.o
	po.DialTimeout = capDur(c.o.dialTimeout(), 2*time.Second)
	cn, err := dialConn(addr, po)
	if err != nil {
		return Health{}, err
	}
	defer cn.fail(ErrClosed)
	op, fields, err := cn.roundTrip(capDur(c.o.requestTimeout(), 2*time.Second), wire.OpHealth)
	if err == nil && op == wire.OpError {
		err = wire.DecodeError(fields)
	}
	if err != nil {
		return Health{}, err
	}
	return wire.DecodeHealth(fields)
}

// capDur bounds d to at most cap; 0 (no deadline) also becomes cap.
func capDur(d, cap time.Duration) time.Duration {
	if d <= 0 || d > cap {
		return cap
	}
	return d
}

// repin swaps the write target and kills every pooled connection so the
// next request dials the new primary. In-flight requests on the old pool
// fail with ErrConnLost and retry — against the new pin.
func (c *Client) repin(addr string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	if c.addr != addr {
		c.addr = addr
	}
	for i, cn := range c.pool {
		if cn != nil {
			cn.fail(ErrConnLost)
			c.pool[i] = nil
		}
	}
}
