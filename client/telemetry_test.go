package client

import (
	"errors"
	"net"
	"testing"
	"time"

	"dbpl/internal/server/wire"
	"dbpl/internal/value"
)

// TestClientMetricsCountAttemptsAndRetries: the client's own registry
// reflects what the retry machinery did — one attempt per wire frame
// (retries included), retries classified by cause, and the backoff sleep
// accumulated.
func TestClientMetricsCountAttemptsAndRetries(t *testing.T) {
	srv := &shedServer{sheds: 2, hint: 5 * time.Millisecond}
	addr := fakeServer(t, srv.serve)
	c, err := Dial(addr, &Options{PoolSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Put("k", value.Int(1), nil); err != nil {
		t.Fatal(err)
	}

	snap := c.Telemetry().Snapshot()
	if got, _ := snap.Counter(`dbpl_client_attempts_total{op="PUT"}`); got != 3 {
		t.Errorf("PUT attempts = %d, want 3 (2 sheds + success)", got)
	}
	if got, _ := snap.Counter(`dbpl_client_attempts_total{op="PING"}`); got != 1 {
		t.Errorf("PING attempts = %d, want 1 (Dial's liveness check)", got)
	}
	if got, _ := snap.Counter(`dbpl_client_retries_total{cause="overloaded"}`); got != 2 {
		t.Errorf("overloaded retries = %d, want 2", got)
	}
	if got, _ := snap.Counter("dbpl_client_backoff_ns_total"); got < uint64(2*srv.hint) {
		t.Errorf("backoff total = %dns, want >= %v (the hint twice)", got, 2*srv.hint)
	}
}

// TestTraceMismatchCondemnsConn: a response echoing the WRONG trace ID
// means the FIFO pipeline has desynchronized — the only safe move is to
// fail the connection. The failure must classify as ErrConnLost so the
// retry wrapper redials rather than surfacing a confusing frame error.
func TestTraceMismatchCondemnsConn(t *testing.T) {
	addr := fakeServer(t, func(conn net.Conn) {
		defer conn.Close()
		for {
			rawOp, rawFields, err := wire.ReadFrame(conn, 0)
			if err != nil {
				return
			}
			op, trace, _, traced, err := wire.SplitTrace(rawOp, rawFields)
			if err != nil {
				return
			}
			if op == wire.OpPing || !traced {
				// Dial must succeed; untraced echoes are tolerated anyway.
				err = wire.WriteFrame(conn, 0, wire.OpOK)
			} else {
				respOp, respFields := wire.AppendTrace(wire.OpOK, trace+1, nil)
				err = wire.WriteFrame(conn, 0, respOp, respFields...)
			}
			if err != nil {
				return
			}
		}
	})
	c, err := Dial(addr, &Options{PoolSize: 1, RetryPolicy: RetryPolicy{
		MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	err = c.Put("k", value.Int(1), nil)
	if !errors.Is(err, ErrConnLost) {
		t.Fatalf("Put against a trace-corrupting server = %v, want ErrConnLost", err)
	}
	if got, _ := c.Telemetry().Snapshot().Counter(`dbpl_client_retries_total{cause="conn_lost"}`); got != 2 {
		t.Errorf("conn_lost retries = %d, want 2 (MaxAttempts-1)", got)
	}
}

// TestDisableTraceSendsBareFrames: Options.DisableTrace turns the wire
// extension off entirely — no flag bit, no trace field — for talking to
// pre-extension servers that reject unknown opcodes.
func TestDisableTraceSendsBareFrames(t *testing.T) {
	addr := fakeServer(t, func(conn net.Conn) {
		defer conn.Close()
		for {
			rawOp, _, err := wire.ReadFrame(conn, 0)
			if err != nil {
				return
			}
			if rawOp&wire.TraceFlag != 0 {
				// A strict old server: unknown opcode is a protocol error.
				wire.WriteFrame(conn, 0, wire.OpError,
					wire.ErrorFields(&wire.WireError{Code: wire.CodeBadFrame, Msg: "unknown op"})...)
				return
			}
			if err := wire.WriteFrame(conn, 0, wire.OpOK); err != nil {
				return
			}
		}
	})
	c, err := Dial(addr, &Options{PoolSize: 1, DisableTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Put("k", value.Int(1), nil); err != nil {
		t.Fatalf("Put with DisableTrace against a strict old server: %v", err)
	}
}
