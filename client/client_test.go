package client

import (
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"dbpl/internal/server/wire"
)

// fakeServer accepts one connection and hands it to serve; the wire
// protocol is spoken by hand so the client's transport behavior is tested
// without a real server behind it.
func fakeServer(t *testing.T, serve func(net.Conn)) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go serve(conn)
		}
	}()
	return ln.Addr().String()
}

// answerPings responds OK to every frame it reads, forever.
func answerPings(conn net.Conn) {
	defer conn.Close()
	for {
		if _, _, err := wire.ReadFrame(conn, 0); err != nil {
			return
		}
		if err := wire.WriteFrame(conn, 0, wire.OpOK); err != nil {
			return
		}
	}
}

// TestRequestTimeoutKillsConn: a server that swallows requests must not
// wedge the caller — the request fails with ErrDeadline, the connection
// is condemned, and the pool redials transparently on next use.
func TestRequestTimeoutKillsConn(t *testing.T) {
	var responsive atomic.Bool
	responsive.Store(true)
	addr := fakeServer(t, func(conn net.Conn) {
		if responsive.Load() {
			answerPings(conn)
			return
		}
		// Swallow everything, answer nothing.
		defer conn.Close()
		buf := make([]byte, 1024)
		for {
			if _, err := conn.Read(buf); err != nil {
				return
			}
		}
	})
	c, err := Dial(addr, &Options{PoolSize: 1, RequestTimeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	responsive.Store(false) // the redial after this lands on the black hole
	// Kill the live conn so the next request redials to the black hole.
	c.mu.Lock()
	c.pool[0].fail(errors.New("test: condemned"))
	c.mu.Unlock()

	start := time.Now()
	if err := c.Ping(); !errors.Is(err, ErrDeadline) {
		t.Fatalf("Ping against a black hole = %v, want ErrDeadline", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("deadline took %v, want ~100ms", elapsed)
	}

	responsive.Store(true)
	if err := c.Ping(); err != nil {
		t.Fatalf("Ping after redial: %v", err)
	}
}

// TestPoolRedialsDeadSlots: every pooled connection dying (server
// restart) is invisible to callers beyond the failed in-flight requests.
func TestPoolRedialsDeadSlots(t *testing.T) {
	addr := fakeServer(t, answerPings)
	c, err := Dial(addr, &Options{PoolSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 4; i++ { // touch both slots
		if err := c.Ping(); err != nil {
			t.Fatal(err)
		}
	}
	c.mu.Lock()
	for _, cn := range c.pool {
		if cn != nil {
			cn.fail(errors.New("test: server restarted"))
		}
	}
	c.mu.Unlock()
	for i := 0; i < 4; i++ {
		if err := c.Ping(); err != nil {
			t.Fatalf("Ping %d after restart: %v", i, err)
		}
	}
}

// TestUnsolicitedResponseCondemnsConn: a server pushing frames nobody
// asked for is a protocol violation, not a crash.
func TestUnsolicitedResponseCondemnsConn(t *testing.T) {
	addr := fakeServer(t, func(conn net.Conn) {
		defer conn.Close()
		// Answer the Dial-time ping, then inject garbage.
		if _, _, err := wire.ReadFrame(conn, 0); err != nil {
			return
		}
		wire.WriteFrame(conn, 0, wire.OpOK)
		wire.WriteFrame(conn, 0, wire.OpOK) // unsolicited
		// Hold the conn open so the client reader sees the frame.
		time.Sleep(2 * time.Second)
	})
	c, err := Dial(addr, &Options{PoolSize: 1, RequestTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	deadline := time.Now().Add(time.Second)
	for {
		c.mu.Lock()
		cn := c.pool[0]
		c.mu.Unlock()
		if cn != nil && cn.isDead() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("unsolicited response did not condemn the connection")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRemoteErrorsKeepTheTaxonomy: an OpError response surfaces as the
// typed wire error, and the connection stays usable (an application
// error is not a transport error).
func TestRemoteErrorsKeepTheTaxonomy(t *testing.T) {
	reqs := 0
	addr := fakeServer(t, func(conn net.Conn) {
		defer conn.Close()
		for {
			if _, _, err := wire.ReadFrame(conn, 0); err != nil {
				return
			}
			reqs++
			if reqs == 2 { // the post-Dial request gets the error
				wire.WriteFrame(conn, 0, wire.OpError,
					wire.ErrorFields(&wire.WireError{Code: wire.CodeNoRoot, Msg: "no root \"x\""})...)
				continue
			}
			wire.WriteFrame(conn, 0, wire.OpOK)
		}
	})
	c, err := Dial(addr, &Options{PoolSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Names(); !errors.Is(err, wire.ErrNoRoot) {
		t.Fatalf("err = %v, want wire.ErrNoRoot", err)
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("connection unusable after an application error: %v", err)
	}
}
