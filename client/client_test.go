package client

import (
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"dbpl/internal/server/wire"
)

// fakeServer accepts one connection and hands it to serve; the wire
// protocol is spoken by hand so the client's transport behavior is tested
// without a real server behind it.
func fakeServer(t testing.TB, serve func(net.Conn)) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go serve(conn)
		}
	}()
	return ln.Addr().String()
}

// answerPings responds OK to every frame it reads, forever.
func answerPings(conn net.Conn) {
	defer conn.Close()
	for {
		if _, _, err := wire.ReadFrame(conn, 0); err != nil {
			return
		}
		if err := wire.WriteFrame(conn, 0, wire.OpOK); err != nil {
			return
		}
	}
}

// TestRequestTimeoutKillsConn: a server that swallows requests must not
// wedge the caller — the request fails with ErrDeadline, the connection
// is condemned, and the pool redials transparently on next use.
func TestRequestTimeoutKillsConn(t *testing.T) {
	var responsive atomic.Bool
	responsive.Store(true)
	addr := fakeServer(t, func(conn net.Conn) {
		if responsive.Load() {
			answerPings(conn)
			return
		}
		// Swallow everything, answer nothing.
		defer conn.Close()
		buf := make([]byte, 1024)
		for {
			if _, err := conn.Read(buf); err != nil {
				return
			}
		}
	})
	c, err := Dial(addr, &Options{PoolSize: 1, RequestTimeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	responsive.Store(false) // the redial after this lands on the black hole
	// Kill the live conn so the next request redials to the black hole.
	c.mu.Lock()
	c.pool[0].fail(errors.New("test: condemned"))
	c.mu.Unlock()

	start := time.Now()
	if err := c.Ping(); !errors.Is(err, ErrDeadline) {
		t.Fatalf("Ping against a black hole = %v, want ErrDeadline", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("deadline took %v, want ~100ms", elapsed)
	}

	responsive.Store(true)
	if err := c.Ping(); err != nil {
		t.Fatalf("Ping after redial: %v", err)
	}
}

// TestPoolRedialsDeadSlots: every pooled connection dying (server
// restart) is invisible to callers beyond the failed in-flight requests.
func TestPoolRedialsDeadSlots(t *testing.T) {
	addr := fakeServer(t, answerPings)
	c, err := Dial(addr, &Options{PoolSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 4; i++ { // touch both slots
		if err := c.Ping(); err != nil {
			t.Fatal(err)
		}
	}
	c.mu.Lock()
	for _, cn := range c.pool {
		if cn != nil {
			cn.fail(errors.New("test: server restarted"))
		}
	}
	c.mu.Unlock()
	for i := 0; i < 4; i++ {
		if err := c.Ping(); err != nil {
			t.Fatalf("Ping %d after restart: %v", i, err)
		}
	}
}

// TestUnsolicitedResponseCondemnsConn: a server pushing frames nobody
// asked for is a protocol violation, not a crash.
func TestUnsolicitedResponseCondemnsConn(t *testing.T) {
	addr := fakeServer(t, func(conn net.Conn) {
		defer conn.Close()
		// Answer the Dial-time ping, then inject garbage.
		if _, _, err := wire.ReadFrame(conn, 0); err != nil {
			return
		}
		wire.WriteFrame(conn, 0, wire.OpOK)
		wire.WriteFrame(conn, 0, wire.OpOK) // unsolicited
		// Hold the conn open so the client reader sees the frame.
		time.Sleep(2 * time.Second)
	})
	c, err := Dial(addr, &Options{PoolSize: 1, RequestTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	deadline := time.Now().Add(time.Second)
	for {
		c.mu.Lock()
		cn := c.pool[0]
		c.mu.Unlock()
		if cn != nil && cn.isDead() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("unsolicited response did not condemn the connection")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRemoteErrorsKeepTheTaxonomy: an OpError response surfaces as the
// typed wire error, and the connection stays usable (an application
// error is not a transport error).
func TestRemoteErrorsKeepTheTaxonomy(t *testing.T) {
	reqs := 0
	addr := fakeServer(t, func(conn net.Conn) {
		defer conn.Close()
		for {
			if _, _, err := wire.ReadFrame(conn, 0); err != nil {
				return
			}
			reqs++
			if reqs == 2 { // the post-Dial request gets the error
				wire.WriteFrame(conn, 0, wire.OpError,
					wire.ErrorFields(&wire.WireError{Code: wire.CodeNoRoot, Msg: "no root \"x\""})...)
				continue
			}
			wire.WriteFrame(conn, 0, wire.OpOK)
		}
	})
	c, err := Dial(addr, &Options{PoolSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Names(); !errors.Is(err, wire.ErrNoRoot) {
		t.Fatalf("err = %v, want wire.ErrNoRoot", err)
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("connection unusable after an application error: %v", err)
	}
}

// failWriteConn wraps a net.Conn so the one armed write forwards its bytes
// to the peer, then waits for release and reports failure — modeling a
// write error on a frame the server nevertheless received and answered.
type failWriteConn struct {
	net.Conn
	arm     atomic.Bool
	wrote   chan struct{}
	release chan struct{}
}

func (f *failWriteConn) Write(p []byte) (int, error) {
	if !f.arm.Load() {
		return f.Conn.Write(p)
	}
	f.arm.Store(false)
	if _, err := f.Conn.Write(p); err != nil {
		return 0, err
	}
	close(f.wrote)
	<-f.release
	return 0, errors.New("test: injected write failure")
}

// TestWriteFailureKeepsWonResponse: when a request's response wins the
// race with the write error's fail delivery, roundTrip must return that
// successful response — not op 0 with a nil error, which callers would
// report as a bogus "unexpected response opcode 0x0".
func TestWriteFailureKeepsWonResponse(t *testing.T) {
	addr := fakeServer(t, answerPings)
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	fw := &failWriteConn{Conn: nc, wrote: make(chan struct{}), release: make(chan struct{})}
	cn := &conn{nc: fw, maxFrame: wire.MaxFrame}
	go cn.readLoop()

	fw.arm.Store(true)
	type res struct {
		op  byte
		err error
	}
	done := make(chan res, 1)
	go func() {
		op, _, err := cn.roundTrip(5*time.Second, wire.OpPing)
		done <- res{op, err}
	}()

	<-fw.wrote
	// The slot was enqueued before the write, so pending draining to zero
	// means the reader has matched the response to our request. Only then
	// let the write failure land: the drained result is the won response.
	deadline := time.Now().Add(2 * time.Second)
	for {
		cn.mu.Lock()
		n := len(cn.pending)
		cn.mu.Unlock()
		if n == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("reader never delivered the response")
		}
		time.Sleep(time.Millisecond)
	}
	close(fw.release)
	r := <-done
	if r.err != nil || r.op != wire.OpOK {
		t.Fatalf("roundTrip = op %#x, err %v; want the won OpOK response", r.op, r.err)
	}
	if !cn.isDead() {
		t.Error("connection must still be condemned after the write failure")
	}
}
